//===- NelderMead.cpp - Downhill simplex method ----------------------------===//

#include "optim/NelderMead.h"

#include <algorithm>
#include <cmath>
#include <numeric>

using namespace coverme;

MinimizeResult NelderMeadMinimizer::minimize(const Objective &RawFn,
                                             std::vector<double> Start) const {
  MinimizeResult Res;
  Res.X = std::move(Start);
  if (Res.X.empty())
    return Res;

  CountingObjective Fn(RawFn);
  const size_t N = Res.X.size();

  // Initial simplex: the start plus one vertex displaced per coordinate.
  std::vector<std::vector<double>> Simplex;
  Simplex.reserve(N + 1);
  Simplex.push_back(Res.X);
  for (size_t I = 0; I < N; ++I) {
    std::vector<double> V = Res.X;
    V[I] += (V[I] != 0.0) ? 0.05 * V[I] * Opts.InitialStep
                          : 0.25 * Opts.InitialStep;
    Simplex.push_back(std::move(V));
  }
  std::vector<double> FVals(N + 1);
  for (size_t I = 0; I <= N; ++I)
    FVals[I] = Fn(Simplex[I]);

  std::vector<size_t> Order(N + 1);

  auto Centroid = [&](size_t ExcludeIdx) {
    std::vector<double> C(N, 0.0);
    for (size_t I = 0; I <= N; ++I) {
      if (I == ExcludeIdx)
        continue;
      for (size_t K = 0; K < N; ++K)
        C[K] += Simplex[I][K];
    }
    for (double &V : C)
      V /= static_cast<double>(N);
    return C;
  };

  for (unsigned Iter = 0; Iter < Opts.MaxIterations * 4; ++Iter) {
    ++Res.Iterations;
    std::iota(Order.begin(), Order.end(), 0);
    std::sort(Order.begin(), Order.end(),
              [&](size_t A, size_t B) { return FVals[A] < FVals[B]; });
    size_t Best = Order.front(), Worst = Order.back();
    size_t SecondWorst = Order[N - 1];

    if (FVals[Best] == 0.0 || Fn.numEvals() >= Opts.MaxEvaluations)
      break;
    if (std::fabs(FVals[Worst] - FVals[Best]) <=
        Opts.FTol * (std::fabs(FVals[Worst]) + std::fabs(FVals[Best])) +
            1e-300) {
      Res.Converged = true;
      break;
    }

    std::vector<double> C = Centroid(Worst);
    auto Affine = [&](double T) {
      std::vector<double> P(N);
      for (size_t K = 0; K < N; ++K)
        P[K] = C[K] + T * (Simplex[Worst][K] - C[K]);
      return P;
    };

    std::vector<double> Reflected = Affine(-1.0);
    double FReflected = Fn(Reflected);
    if (FReflected < FVals[Best]) {
      std::vector<double> Expanded = Affine(-2.0);
      double FExpanded = Fn(Expanded);
      if (FExpanded < FReflected) {
        Simplex[Worst] = std::move(Expanded);
        FVals[Worst] = FExpanded;
      } else {
        Simplex[Worst] = std::move(Reflected);
        FVals[Worst] = FReflected;
      }
      continue;
    }
    if (FReflected < FVals[SecondWorst]) {
      Simplex[Worst] = std::move(Reflected);
      FVals[Worst] = FReflected;
      continue;
    }
    // Contraction (outside if the reflection improved on the worst).
    double ContractT = FReflected < FVals[Worst] ? -0.5 : 0.5;
    std::vector<double> Contracted = Affine(ContractT);
    double FContracted = Fn(Contracted);
    if (FContracted < std::min(FReflected, FVals[Worst])) {
      Simplex[Worst] = std::move(Contracted);
      FVals[Worst] = FContracted;
      continue;
    }
    // Shrink toward the best vertex.
    for (size_t I = 0; I <= N; ++I) {
      if (I == Best)
        continue;
      for (size_t K = 0; K < N; ++K)
        Simplex[I][K] = Simplex[Best][K] + 0.5 * (Simplex[I][K] - Simplex[Best][K]);
      FVals[I] = Fn(Simplex[I]);
    }
  }

  size_t BestIdx = 0;
  for (size_t I = 1; I <= N; ++I)
    if (FVals[I] < FVals[BestIdx])
      BestIdx = I;
  Res.X = Simplex[BestIdx];
  Res.Fx = FVals[BestIdx];
  Res.NumEvals = Fn.numEvals();
  return Res;
}
