//===- NelderMead.cpp - Downhill simplex method ----------------------------===//

#include "optim/NelderMead.h"

#include <algorithm>
#include <cmath>
#include <numeric>

using namespace coverme;

MinimizeResult NelderMeadMinimizer::minimize(ObjectiveFn RawFn,
                                             std::vector<double> Start) const {
  MinimizeResult Res;
  Res.X = std::move(Start);
  if (Res.X.empty())
    return Res;

  CountingObjective Fn(RawFn);
  const size_t N = Res.X.size();

  WS.Simplex.resize((N + 1) * N);
  WS.FVals.resize(N + 1);
  WS.Order.resize(N + 1);
  WS.Centroid.resize(N);
  WS.Reflected.resize(N);
  WS.Expanded.resize(N);
  double *Simplex = WS.Simplex.data();
  auto Vertex = [&](size_t I) { return Simplex + I * N; };

  // Initial simplex: the start plus one vertex displaced per coordinate,
  // evaluated in one batch (row order matches a plain loop).
  std::copy(Res.X.begin(), Res.X.end(), Vertex(0));
  for (size_t I = 0; I < N; ++I) {
    double *V = Vertex(I + 1);
    std::copy(Res.X.begin(), Res.X.end(), V);
    V[I] += (V[I] != 0.0) ? 0.05 * V[I] * Opts.InitialStep
                          : 0.25 * Opts.InitialStep;
  }
  Fn.evalBatch(Simplex, N + 1, N, WS.FVals.data());
  std::vector<double> &FVals = WS.FVals;

  for (unsigned Iter = 0; Iter < Opts.MaxIterations * 4; ++Iter) {
    ++Res.Iterations;
    std::iota(WS.Order.begin(), WS.Order.end(), 0);
    std::sort(WS.Order.begin(), WS.Order.end(),
              [&](size_t A, size_t B) { return FVals[A] < FVals[B]; });
    size_t Best = WS.Order.front(), Worst = WS.Order.back();
    size_t SecondWorst = WS.Order[N - 1];

    if (FVals[Best] == 0.0 || Fn.numEvals() >= Opts.MaxEvaluations)
      break;
    if (std::fabs(FVals[Worst] - FVals[Best]) <=
        Opts.FTol * (std::fabs(FVals[Worst]) + std::fabs(FVals[Best])) +
            1e-300) {
      Res.Converged = true;
      break;
    }

    double *C = WS.Centroid.data();
    std::fill(WS.Centroid.begin(), WS.Centroid.end(), 0.0);
    for (size_t I = 0; I <= N; ++I) {
      if (I == Worst)
        continue;
      const double *V = Vertex(I);
      for (size_t K = 0; K < N; ++K)
        C[K] += V[K];
    }
    for (size_t K = 0; K < N; ++K)
      C[K] /= static_cast<double>(N);

    const double *WorstV = Vertex(Worst);
    auto Affine = [&](double T, double *Out) {
      for (size_t K = 0; K < N; ++K)
        Out[K] = C[K] + T * (WorstV[K] - C[K]);
    };

    Affine(-1.0, WS.Reflected.data());
    double FReflected = Fn.eval(WS.Reflected.data(), N);
    if (FReflected < FVals[Best]) {
      Affine(-2.0, WS.Expanded.data());
      double FExpanded = Fn.eval(WS.Expanded.data(), N);
      if (FExpanded < FReflected) {
        std::copy(WS.Expanded.begin(), WS.Expanded.end(), Vertex(Worst));
        FVals[Worst] = FExpanded;
      } else {
        std::copy(WS.Reflected.begin(), WS.Reflected.end(), Vertex(Worst));
        FVals[Worst] = FReflected;
      }
      continue;
    }
    if (FReflected < FVals[SecondWorst]) {
      std::copy(WS.Reflected.begin(), WS.Reflected.end(), Vertex(Worst));
      FVals[Worst] = FReflected;
      continue;
    }
    // Contraction (outside if the reflection improved on the worst);
    // reuses the expansion buffer, which is dead on this path.
    double ContractT = FReflected < FVals[Worst] ? -0.5 : 0.5;
    Affine(ContractT, WS.Expanded.data());
    double FContracted = Fn.eval(WS.Expanded.data(), N);
    if (FContracted < std::min(FReflected, FVals[Worst])) {
      std::copy(WS.Expanded.begin(), WS.Expanded.end(), Vertex(Worst));
      FVals[Worst] = FContracted;
      continue;
    }
    // Shrink toward the best vertex.
    const double *BestV = Vertex(Best);
    for (size_t I = 0; I <= N; ++I) {
      if (I == Best)
        continue;
      double *V = Vertex(I);
      for (size_t K = 0; K < N; ++K)
        V[K] = BestV[K] + 0.5 * (V[K] - BestV[K]);
      FVals[I] = Fn.eval(V, N);
    }
  }

  size_t BestIdx = 0;
  for (size_t I = 1; I <= N; ++I)
    if (FVals[I] < FVals[BestIdx])
      BestIdx = I;
  Res.X.assign(Vertex(BestIdx), Vertex(BestIdx) + N);
  Res.Fx = FVals[BestIdx];
  Res.NumEvals = Fn.numEvals();
  return Res;
}
