//===- CoordinateDescent.h - Pattern search along axes --------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Hooke-Jeeves-style pattern search: probe +/- step on each coordinate,
/// double the step while improving, halve on failure. Besides serving as an
/// LM ablation, this is the same move structure Korel's Alternating Variable
/// Method uses, which the Austin-lite baseline builds on.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_OPTIM_COORDINATEDESCENT_H
#define COVERME_OPTIM_COORDINATEDESCENT_H

#include "optim/Minimizer.h"

namespace coverme {

/// Coordinate-wise pattern-search local minimizer.
class CoordinateDescentMinimizer : public LocalMinimizer {
public:
  explicit CoordinateDescentMinimizer(LocalMinimizerOptions Opts = {})
      : LocalMinimizer(Opts) {}

  MinimizeResult minimize(ObjectiveFn Fn,
                          std::vector<double> Start) const override;

  std::string name() const override { return "coordinate-descent"; }

private:
  /// Probe buffers reused across runs; the exploratory/pattern loop never
  /// allocates.
  struct Workspace {
    std::vector<double> Probe;
    std::vector<double> Next;
  };
  mutable Workspace WS;
};

/// Identity minimizer: returns the start point untouched. Selecting it turns
/// Basinhopping into plain Metropolis MCMC sampling (the "no LM" ablation).
class IdentityMinimizer : public LocalMinimizer {
public:
  explicit IdentityMinimizer(LocalMinimizerOptions Opts = {})
      : LocalMinimizer(Opts) {}

  MinimizeResult minimize(ObjectiveFn Fn,
                          std::vector<double> Start) const override;

  std::string name() const override { return "none"; }
};

} // namespace coverme

#endif // COVERME_OPTIM_COORDINATEDESCENT_H
