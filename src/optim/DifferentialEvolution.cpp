//===- DifferentialEvolution.cpp - DE/rand/1/bin global minimizer ---------===//

#include "optim/DifferentialEvolution.h"

#include <algorithm>
#include <cmath>

using namespace coverme;

MinimizeResult DifferentialEvolutionMinimizer::minimize(
    ObjectiveFn Fn, std::vector<double> Start, Rng &Rng,
    const GenerationCallback &Callback) const {
  MinimizeResult Result;
  Result.X = Start;
  const unsigned N = static_cast<unsigned>(Start.size());
  if (N == 0)
    return Result;

  CountingObjective Counted(Fn);
  const unsigned NP =
      Opts.PopulationSize ? Opts.PopulationSize : std::max(12u, 8 * N);

  // Seed the population: the starting point itself plus exponent-spread
  // jitter around it (plus a few fully wide samples for global reach),
  // then evaluate all NP members in one batch.
  WS.Pop.resize(static_cast<size_t>(NP) * N);
  WS.Fx.resize(NP);
  WS.Trial.resize(N);
  std::vector<double> &Fx = WS.Fx;
  auto Member = [&](unsigned I) {
    return &WS.Pop[static_cast<size_t>(I) * N];
  };
  for (unsigned I = 0; I < NP; ++I) {
    double *M = Member(I);
    std::copy(Start.begin(), Start.end(), M);
    for (unsigned J = 0; J < N; ++J) {
      double &Coord = M[J];
      if (!std::isfinite(Coord))
        Coord = 0.0;
      if (I == 0)
        continue; // keep the pristine starting point
      if (I % 4 == 0)
        Coord = Rng.wideDouble(); // global exploration member
      else
        Coord += Rng.gaussian() * std::max(1.0, std::fabs(Coord));
    }
  }
  Counted.evalBatch(WS.Pop.data(), NP, N, Fx.data());

  unsigned BestIdx = static_cast<unsigned>(
      std::min_element(Fx.begin(), Fx.end()) - Fx.begin());
  Result.X.assign(Member(BestIdx), Member(BestIdx) + N);
  Result.Fx = Fx[BestIdx];

  double *Trial = WS.Trial.data();
  for (unsigned Gen = 0; Gen < Opts.MaxGenerations; ++Gen) {
    if (Counted.numEvals() + NP > Opts.MaxEvaluations)
      break;
    ++Result.Iterations;

    for (unsigned I = 0; I < NP; ++I) {
      // Pick three distinct members, all different from I.
      unsigned A, B, C;
      do
        A = static_cast<unsigned>(Rng.below(NP));
      while (A == I);
      do
        B = static_cast<unsigned>(Rng.below(NP));
      while (B == I || B == A);
      do
        C = static_cast<unsigned>(Rng.below(NP));
      while (C == I || C == A || C == B);

      // Binomial crossover of the mutant a + F(b - c) with member I.
      unsigned ForcedCoord = static_cast<unsigned>(Rng.below(N));
      for (unsigned J = 0; J < N; ++J) {
        bool Cross =
            J == ForcedCoord || Rng.uniform01() < Opts.CrossoverRate;
        Trial[J] = Cross ? Member(A)[J] + Opts.DifferentialWeight *
                                              (Member(B)[J] - Member(C)[J])
                         : Member(I)[J];
        if (!std::isfinite(Trial[J]))
          Trial[J] = Rng.wideDouble(); // repair non-finite mutants
      }

      double TrialFx = Counted.eval(Trial, N);
      if (TrialFx <= Fx[I]) {
        std::copy(Trial, Trial + N, Member(I));
        Fx[I] = TrialFx;
        if (TrialFx < Result.Fx) {
          Result.Fx = TrialFx;
          Result.X.assign(Trial, Trial + N);
        }
      }
    }

    if (Callback && Callback(Result.X, Result.Fx)) {
      Result.StoppedByCallback = true;
      break;
    }

    double Worst = *std::max_element(Fx.begin(), Fx.end());
    if (Worst - Result.Fx < Opts.FTol && std::fabs(Result.Fx) < Opts.FTol) {
      Result.Converged = true;
      break;
    }
  }

  Result.NumEvals = Counted.numEvals();
  return Result;
}
