//===- SimulatedAnnealing.cpp - Annealed Metropolis sampling ----------------===//

#include "optim/SimulatedAnnealing.h"

#include <cmath>

using namespace coverme;

MinimizeResult SimulatedAnnealingMinimizer::minimize(const Objective &RawFn,
                                                     std::vector<double> Start,
                                                     Rng &Rng) const {
  MinimizeResult Res;
  Res.X = std::move(Start);
  if (Res.X.empty())
    return Res;

  CountingObjective Fn(RawFn);
  const size_t N = Res.X.size();
  std::vector<double> Cur = Res.X;
  double FCur = Fn(Cur);
  Res.Fx = FCur;

  // Geometric cooling from InitialTemp to FinalTemp over NumSteps.
  double CoolRate = std::pow(Opts.FinalTemp / Opts.InitialTemp,
                             1.0 / static_cast<double>(Opts.NumSteps));
  double Temp = Opts.InitialTemp;

  for (unsigned Step = 0; Step < Opts.NumSteps; ++Step) {
    ++Res.Iterations;
    std::vector<double> Proposal(N);
    for (size_t I = 0; I < N; ++I) {
      if (Rng.chance(Opts.JumpProbability))
        Proposal[I] = Rng.exponentUniformDouble();
      else
        Proposal[I] = Cur[I] + Rng.gaussian(0.0, Opts.StepSigma *
                                                     (1.0 + std::fabs(Cur[I])));
    }
    double FProposal = Fn(Proposal);
    bool Accept = FProposal < FCur ||
                  Rng.uniform01() < std::exp((FCur - FProposal) / Temp);
    if (Accept) {
      Cur = std::move(Proposal);
      FCur = FProposal;
      if (FCur < Res.Fx) {
        Res.X = Cur;
        Res.Fx = FCur;
      }
    }
    if (Res.Fx == 0.0)
      break;
    Temp *= CoolRate;
  }

  Res.NumEvals = Fn.numEvals();
  Res.Converged = Res.Fx == 0.0;
  return Res;
}
