//===- SimulatedAnnealing.cpp - Annealed Metropolis sampling ----------------===//

#include "optim/SimulatedAnnealing.h"

#include <cmath>

using namespace coverme;

MinimizeResult SimulatedAnnealingMinimizer::minimize(ObjectiveFn RawFn,
                                                     std::vector<double> Start,
                                                     Rng &Rng) const {
  MinimizeResult Res;
  Res.X = std::move(Start);
  if (Res.X.empty())
    return Res;

  CountingObjective Fn(RawFn);
  const size_t N = Res.X.size();
  WS.Cur = Res.X;
  WS.Proposal.resize(N);
  double FCur = Fn.eval(WS.Cur.data(), N);
  Res.Fx = FCur;

  // Geometric cooling from InitialTemp to FinalTemp over NumSteps.
  double CoolRate = std::pow(Opts.FinalTemp / Opts.InitialTemp,
                             1.0 / static_cast<double>(Opts.NumSteps));
  double Temp = Opts.InitialTemp;

  for (unsigned Step = 0; Step < Opts.NumSteps; ++Step) {
    ++Res.Iterations;
    for (size_t I = 0; I < N; ++I) {
      if (Rng.chance(Opts.JumpProbability))
        WS.Proposal[I] = Rng.exponentUniformDouble();
      else
        WS.Proposal[I] =
            WS.Cur[I] +
            Rng.gaussian(0.0, Opts.StepSigma * (1.0 + std::fabs(WS.Cur[I])));
    }
    double FProposal = Fn.eval(WS.Proposal.data(), N);
    bool Accept = FProposal < FCur ||
                  Rng.uniform01() < std::exp((FCur - FProposal) / Temp);
    if (Accept) {
      WS.Cur.swap(WS.Proposal);
      FCur = FProposal;
      if (FCur < Res.Fx) {
        Res.X = WS.Cur;
        Res.Fx = FCur;
      }
    }
    if (Res.Fx == 0.0)
      break;
    Temp *= CoolRate;
  }

  Res.NumEvals = Fn.numEvals();
  Res.Converged = Res.Fx == 0.0;
  return Res;
}
