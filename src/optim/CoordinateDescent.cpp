//===- CoordinateDescent.cpp - Pattern search along axes -------------------===//

#include "optim/CoordinateDescent.h"

#include <cmath>

using namespace coverme;

MinimizeResult
CoordinateDescentMinimizer::minimize(const Objective &RawFn,
                                     std::vector<double> Start) const {
  MinimizeResult Res;
  Res.X = std::move(Start);
  if (Res.X.empty())
    return Res;

  CountingObjective Fn(RawFn);
  const size_t N = Res.X.size();
  double FCur = Fn(Res.X);
  double Step = Opts.InitialStep;

  for (unsigned Iter = 0; Iter < Opts.MaxIterations * 8; ++Iter) {
    ++Res.Iterations;
    bool Improved = false;
    for (size_t D = 0; D < N && Fn.numEvals() < Opts.MaxEvaluations; ++D) {
      // Exploratory move: probe both signs.
      for (double Sign : {+1.0, -1.0}) {
        std::vector<double> Probe = Res.X;
        // Scale the step to the coordinate's magnitude so the search can
        // move across exponents, not just absolute distances.
        double Scaled = Sign * Step * (1.0 + std::fabs(Probe[D]));
        Probe[D] += Scaled;
        double FProbe = Fn(Probe);
        if (FProbe >= FCur)
          continue;
        // Pattern move: keep doubling while it pays off.
        Res.X = Probe;
        FCur = FProbe;
        Improved = true;
        double Leap = Scaled;
        while (Fn.numEvals() < Opts.MaxEvaluations) {
          Leap *= 2.0;
          std::vector<double> Next = Res.X;
          Next[D] += Leap;
          double FNext = Fn(Next);
          if (FNext >= FCur)
            break;
          Res.X = std::move(Next);
          FCur = FNext;
        }
        break;
      }
    }
    if (FCur == 0.0 || Fn.numEvals() >= Opts.MaxEvaluations)
      break;
    if (!Improved) {
      Step *= 0.25;
      if (Step < 1e-14) {
        Res.Converged = true;
        break;
      }
    }
  }

  Res.Fx = FCur;
  Res.NumEvals = Fn.numEvals();
  return Res;
}

MinimizeResult IdentityMinimizer::minimize(const Objective &RawFn,
                                           std::vector<double> Start) const {
  MinimizeResult Res;
  Res.X = std::move(Start);
  CountingObjective Fn(RawFn);
  Res.Fx = Res.X.empty() ? 0.0 : Fn(Res.X);
  Res.NumEvals = Fn.numEvals();
  Res.Converged = true;
  return Res;
}
