//===- CoordinateDescent.cpp - Pattern search along axes -------------------===//

#include "optim/CoordinateDescent.h"

#include <cmath>

using namespace coverme;

MinimizeResult
CoordinateDescentMinimizer::minimize(ObjectiveFn RawFn,
                                     std::vector<double> Start) const {
  MinimizeResult Res;
  Res.X = std::move(Start);
  if (Res.X.empty())
    return Res;

  CountingObjective Fn(RawFn);
  const size_t N = Res.X.size();
  WS.Probe.resize(N);
  WS.Next.resize(N);
  double FCur = Fn.eval(Res.X.data(), N);
  double Step = Opts.InitialStep;

  for (unsigned Iter = 0; Iter < Opts.MaxIterations * 8; ++Iter) {
    ++Res.Iterations;
    bool Improved = false;
    for (size_t D = 0; D < N && Fn.numEvals() < Opts.MaxEvaluations; ++D) {
      // Exploratory move: probe both signs.
      for (double Sign : {+1.0, -1.0}) {
        WS.Probe = Res.X;
        // Scale the step to the coordinate's magnitude so the search can
        // move across exponents, not just absolute distances.
        double Scaled = Sign * Step * (1.0 + std::fabs(WS.Probe[D]));
        WS.Probe[D] += Scaled;
        double FProbe = Fn.eval(WS.Probe.data(), N);
        if (FProbe >= FCur)
          continue;
        // Pattern move: keep doubling while it pays off.
        Res.X.swap(WS.Probe);
        FCur = FProbe;
        Improved = true;
        double Leap = Scaled;
        while (Fn.numEvals() < Opts.MaxEvaluations) {
          Leap *= 2.0;
          WS.Next = Res.X;
          WS.Next[D] += Leap;
          double FNext = Fn.eval(WS.Next.data(), N);
          if (FNext >= FCur)
            break;
          Res.X.swap(WS.Next);
          FCur = FNext;
        }
        break;
      }
    }
    if (FCur == 0.0 || Fn.numEvals() >= Opts.MaxEvaluations)
      break;
    if (!Improved) {
      Step *= 0.25;
      if (Step < 1e-14) {
        Res.Converged = true;
        break;
      }
    }
  }

  Res.Fx = FCur;
  Res.NumEvals = Fn.numEvals();
  return Res;
}

MinimizeResult IdentityMinimizer::minimize(ObjectiveFn RawFn,
                                           std::vector<double> Start) const {
  MinimizeResult Res;
  Res.X = std::move(Start);
  CountingObjective Fn(RawFn);
  Res.Fx = Res.X.empty() ? 0.0 : Fn.eval(Res.X.data(), Res.X.size());
  Res.NumEvals = Fn.numEvals();
  Res.Converged = true;
  return Res;
}
