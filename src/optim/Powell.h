//===- Powell.h - Powell's conjugate-direction method ---------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Powell's derivative-free method (Numerical Recipes ch. 10.7): minimize
/// along each direction of an evolving direction set, then replace the
/// direction of largest decrease with the overall displacement. This is the
/// LM="powell" setting the paper's evaluation uses (Sect. 6.1).
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_OPTIM_POWELL_H
#define COVERME_OPTIM_POWELL_H

#include "optim/Minimizer.h"

namespace coverme {

/// Powell's conjugate-direction local minimizer.
class PowellMinimizer : public LocalMinimizer {
public:
  explicit PowellMinimizer(LocalMinimizerOptions Opts = {})
      : LocalMinimizer(Opts) {}

  MinimizeResult minimize(ObjectiveFn Fn,
                          std::vector<double> Start) const override;

  std::string name() const override { return "powell"; }

private:
  /// Flat per-instance arena reused across runs: the N x N direction set
  /// plus the iteration-scratch vectors. Sized (one allocation each) the
  /// first time a given arity is seen; the probe loop never allocates.
  struct Workspace {
    std::vector<double> Dirs; ///< N x N direction set, row-major.
    std::vector<double> PStart;
    std::vector<double> NewDir;
    std::vector<double> Extrapolated;
    std::vector<double> Probe;
  };
  mutable Workspace WS;
};

} // namespace coverme

#endif // COVERME_OPTIM_POWELL_H
