//===- Objective.h - Black-box objective functions ------------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unconstrained-programming problem of Sect. 2: given f : R^n -> R,
/// find x* with f(x*) <= f(x) for all x. Everything in this library treats
/// f as a black box, exactly as Algorithm 1 requires — the representing
/// function FOO_R is just one such objective.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_OPTIM_OBJECTIVE_H
#define COVERME_OPTIM_OBJECTIVE_H

#include <cstdint>
#include <functional>
#include <vector>

namespace coverme {

/// A black-box objective over R^n.
using Objective = std::function<double(const std::vector<double> &)>;

/// Large finite value substituted for NaN objective results so the
/// minimizers' comparisons stay well ordered (NaN poisons every ordering).
inline constexpr double NaNPenalty = 1e300;

/// Wraps an objective so calls are counted and NaN results are replaced by
/// NaNPenalty. Every minimizer routes its probes through one of these.
class CountingObjective {
public:
  explicit CountingObjective(const Objective &Fn) : Fn(Fn) {}

  double operator()(const std::vector<double> &X) {
    ++NumEvals;
    double V = Fn(X);
    return V != V ? NaNPenalty : V;
  }

  uint64_t numEvals() const { return NumEvals; }

private:
  const Objective &Fn;
  uint64_t NumEvals = 0;
};

} // namespace coverme

#endif // COVERME_OPTIM_OBJECTIVE_H
