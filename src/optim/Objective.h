//===- Objective.h - Black-box objective functions ------------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unconstrained-programming problem of Sect. 2: given f : R^n -> R,
/// find x* with f(x*) <= f(x) for all x. Everything in this library treats
/// f as a black box, exactly as Algorithm 1 requires — the representing
/// function FOO_R is just one such objective.
///
/// The interface is built for the hot loop. ObjectiveFn is a non-owning,
/// trivially copyable view (a state pointer plus two raw function
/// pointers): evaluating a probe costs one indirect call on a span
/// argument — no std::function double-dispatch, no vector allocation.
/// Population backends evaluate whole candidate matrices through
/// evalBatch(), which objectives may override (one member function named
/// `evalBatch`) to amortize per-call setup; the default loops over eval in
/// row order, so batching never changes results, only cost.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_OPTIM_OBJECTIVE_H
#define COVERME_OPTIM_OBJECTIVE_H

#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace coverme {

/// Large finite value substituted for NaN objective results so the
/// minimizers' comparisons stay well ordered (NaN poisons every ordering).
inline constexpr double NaNPenalty = 1e300;

namespace detail {

/// Overload-ranking tags: prefer a dedicated member over the fallback.
struct ObjRank0 {};
struct ObjRank1 : ObjRank0 {};

/// Calls Fn.eval(X, N) when the callee provides it...
template <typename C>
auto objectiveEval(C &Fn, const double *X, size_t N, ObjRank1)
    -> decltype(static_cast<double>(Fn.eval(X, N))) {
  return Fn.eval(X, N);
}

/// ...otherwise Fn(X, N).
template <typename C>
double objectiveEval(C &Fn, const double *X, size_t N, ObjRank0) {
  return Fn(X, N);
}

/// Forwards to Fn.evalBatch when the callee provides one...
template <typename C>
auto objectiveBatch(C &Fn, const double *Xs, size_t Count, size_t N,
                    double *Out, ObjRank1)
    -> decltype(Fn.evalBatch(Xs, Count, N, Out)) {
  return Fn.evalBatch(Xs, Count, N, Out);
}

/// ...otherwise evaluates the Count points row by row (the loop-over-eval
/// default; identical results to any correct override).
template <typename C>
void objectiveBatch(C &Fn, const double *Xs, size_t Count, size_t N,
                    double *Out, ObjRank0) {
  for (size_t I = 0; I < Count; ++I)
    Out[I] = objectiveEval(Fn, Xs + I * N, N, ObjRank1());
}

} // namespace detail

/// A black-box objective over R^n: a non-owning view of a callee that
/// evaluates points given as (const double *, size_t) spans.
///
/// The callee provides either `double eval(const double *X, size_t N)` or
/// `double operator()(const double *X, size_t N)` (eval wins when both
/// exist), and may provide
/// `void evalBatch(const double *Xs, size_t Count, size_t N, double *Out)`
/// to evaluate Count contiguous rows at once; absent that, evalBatch loops
/// over eval.
///
/// ObjectiveFn deliberately binds *lvalues only*: a temporary callee would
/// dangle the moment the full-expression ends (the CountingObjective bug
/// this design replaced bound `FR.asObjective()` — a dead temporary — by
/// reference), so passing an rvalue does not compile.
class ObjectiveFn {
public:
  /// Binds a callable object. The callee must outlive this view; every
  /// minimizer only uses the view for the duration of one minimize() call.
  template <typename C,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_const_t<C>, ObjectiveFn> &&
                !std::is_function_v<C>>>
  ObjectiveFn(C &Callee)
      : State(const_cast<void *>(static_cast<const void *>(&Callee))),
        Eval(&evalThunk<C>), Batch(&batchThunk<C>) {}

  /// Closes the const-temporary loophole: without this, a const rvalue
  /// would deduce C = const T and bind through `const T &` — the very
  /// dangling-callee bug this class exists to rule out.
  template <typename C> ObjectiveFn(const C &&) = delete;

  /// Plain-function objectives bind directly (test fixtures mostly).
  using PlainFn = double(const double *X, size_t N);
  ObjectiveFn(PlainFn &Fn)
      : State(reinterpret_cast<void *>(&Fn)), Eval(&plainEvalThunk),
        Batch(&plainBatchThunk) {}

  /// Evaluates f at the span [X, X + N).
  double operator()(const double *X, size_t N) const {
    return Eval(State, X, N);
  }
  double eval(const double *X, size_t N) const { return Eval(State, X, N); }

  /// Evaluates Count points stored row-major in [Xs, Xs + Count * N) into
  /// Out[0..Count). Row order matches the loop-over-eval default.
  void evalBatch(const double *Xs, size_t Count, size_t N,
                 double *Out) const {
    Batch(State, Xs, Count, N, Out);
  }

private:
  using EvalFn = double (*)(void *State, const double *X, size_t N);
  using BatchFn = void (*)(void *State, const double *Xs, size_t Count,
                           size_t N, double *Out);

  template <typename C>
  static double evalThunk(void *State, const double *X, size_t N) {
    return detail::objectiveEval(*static_cast<C *>(State), X, N,
                                 detail::ObjRank1());
  }

  template <typename C>
  static void batchThunk(void *State, const double *Xs, size_t Count,
                         size_t N, double *Out) {
    detail::objectiveBatch(*static_cast<C *>(State), Xs, Count, N, Out,
                           detail::ObjRank1());
  }

  static double plainEvalThunk(void *State, const double *X, size_t N) {
    return reinterpret_cast<PlainFn *>(State)(X, N);
  }

  static void plainBatchThunk(void *State, const double *Xs, size_t Count,
                              size_t N, double *Out) {
    auto *Fn = reinterpret_cast<PlainFn *>(State);
    for (size_t I = 0; I < Count; ++I)
      Out[I] = Fn(Xs + I * N, N);
  }

  void *State;
  EvalFn Eval;
  BatchFn Batch;
};

/// Wraps an objective so calls are counted and NaN results are replaced by
/// NaNPenalty. Every minimizer routes its probes through one of these.
/// Holds the ObjectiveFn view by value — the view is two pointers, and the
/// callee it refers to is the minimize() argument, alive for the whole
/// run; there is no temporary to dangle on.
class CountingObjective {
public:
  explicit CountingObjective(ObjectiveFn Fn) : Fn(Fn) {}

  double eval(const double *X, size_t N) {
    ++NumEvals;
    double V = Fn(X, N);
    return V != V ? NaNPenalty : V;
  }

  double operator()(const double *X, size_t N) { return eval(X, N); }

  /// Batched probes: forwards to the callee's batch path, then applies the
  /// same count-and-sanitize accounting per row.
  void evalBatch(const double *Xs, size_t Count, size_t N, double *Out) {
    Fn.evalBatch(Xs, Count, N, Out);
    NumEvals += Count;
    for (size_t I = 0; I < Count; ++I)
      if (Out[I] != Out[I])
        Out[I] = NaNPenalty;
  }

  uint64_t numEvals() const { return NumEvals; }

private:
  ObjectiveFn Fn;
  uint64_t NumEvals = 0;
};

} // namespace coverme

#endif // COVERME_OPTIM_OBJECTIVE_H
