//===- Minimizer.h - Local minimizer interface ----------------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The LM parameter of Algorithm 1: a local minimization routine used both
/// standalone and inside Basinhopping's Monte-Carlo loop. The paper runs
/// LM="powell"; this interface lets the driver swap local minimizers as a
/// black box (the ablation benches exercise that freedom).
///
/// Concrete minimizers keep a per-instance workspace (direction sets,
/// simplex, probe buffers) that is sized on first use and reused across
/// minimize() calls, so the steady-state probe loop performs no heap
/// allocations. The consequence is that a minimizer instance is
/// *thread-compatible, not thread-safe*: give each worker thread its own
/// instance (the campaign engine already does).
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_OPTIM_MINIMIZER_H
#define COVERME_OPTIM_MINIMIZER_H

#include "optim/Objective.h"

#include <memory>
#include <string>
#include <vector>

namespace coverme {

/// Outcome of one local or global minimization run.
struct MinimizeResult {
  std::vector<double> X;       ///< Best point found.
  double Fx = 0.0;             ///< Objective value at X.
  uint64_t NumEvals = 0;       ///< Objective evaluations consumed.
  unsigned Iterations = 0;     ///< Outer iterations performed.
  bool Converged = false;      ///< Tolerance met (vs. budget exhausted).
  bool StoppedByCallback = false; ///< A client callback requested a stop.
};

/// Shared knobs for the local minimizers.
struct LocalMinimizerOptions {
  unsigned MaxIterations = 40;   ///< Outer sweeps (direction sets, simplex).
  uint64_t MaxEvaluations = 4000; ///< Hard objective-call budget.
  double FTol = 1e-12;           ///< Relative f-decrease convergence test.
  double InitialStep = 1.0;      ///< Scale of the first probing step.
};

/// Abstract derivative-free local minimizer.
class LocalMinimizer {
public:
  explicit LocalMinimizer(LocalMinimizerOptions Opts = {}) : Opts(Opts) {}
  virtual ~LocalMinimizer();

  /// Minimizes \p Fn starting from \p Start. Never throws; on a zero-sized
  /// start it returns Start unchanged with Converged=false. The callee
  /// behind \p Fn must stay alive for the duration of the call.
  virtual MinimizeResult minimize(ObjectiveFn Fn,
                                  std::vector<double> Start) const = 0;

  /// Human-readable algorithm name ("powell", "nelder-mead", ...).
  virtual std::string name() const = 0;

  const LocalMinimizerOptions &options() const { return Opts; }

protected:
  LocalMinimizerOptions Opts;
};

/// The local minimizers available to Algorithm 1's LM parameter.
enum class LocalMinimizerKind {
  Powell,            ///< Powell's conjugate-direction method (paper default).
  NelderMead,        ///< Downhill simplex.
  CoordinateDescent, ///< Pattern search along coordinate axes.
  None,              ///< Identity "minimizer" (pure MCMC ablation).
};

/// Spelling used in option parsing and report headers.
const char *localMinimizerKindName(LocalMinimizerKind Kind);

/// Factory for the LM black box.
std::unique_ptr<LocalMinimizer>
makeLocalMinimizer(LocalMinimizerKind Kind, LocalMinimizerOptions Opts = {});

} // namespace coverme

#endif // COVERME_OPTIM_MINIMIZER_H
