//===- Vm.h - Stack VM for the compiled mini-C tier -----------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes lang/Bytecode.h programs. One Vm is one thread's execution
/// state — operand stack, frame arena, private copy of the global arena,
/// step budget — over a shared immutable CompiledUnit, which is what lets
/// VM-backed Programs declare ThreadSafeBody and shard across the
/// CampaignEngine's workers (compile once, run per thread).
///
/// Semantics match lang/Interp observably: entry-parameter lowering
/// (Sect. 5.3), the arena memory model with identical pointer encoding,
/// rt::cond hooks at the same Sema-numbered sites in the same order, and
/// total execution — every trap (OOB, null deref, division by zero,
/// budget exhaustion) abandons the call and surfaces as NaN. The
/// InterpOptions budgets carry the same meaning on both tiers: MaxSteps
/// bounds units of work (AST nodes there, instruction step costs here),
/// so a loop that exhausts the budget yields NaN rather than hanging
/// either way.
///
/// Two dispatch loops drive the same handlers (src/lang/VmExecBody.inc):
/// a portable switch loop and, when the build enables COVERME_VM_CGOTO on
/// a GNU-compatible toolchain, a computed-goto direct-threaded loop.
/// InterpOptions::Dispatch selects per Vm; results are bit-identical.
///
/// The batch entry additionally carries a SIMD wide-execution lane
/// (src/lang/VmWide.h, VmWideBody.inc): when the build enables
/// COVERME_VM_SIMD, the host has AVX2, and the bound function passed the
/// compiler's wide-safety analysis, runBatch executes four rows per
/// instruction in structure-of-arrays form, retiring diverging or
/// trapping rows back to the scalar probe loop so every row stays
/// bit-identical to scalar execution. InterpOptions::Simd opts out.
///
/// The step budget is charged per basic block, not per instruction: at
/// exec entry and at every control transfer the VM charges the upcoming
/// straight-line run's pre-summed cost (CompiledUnit::BlockCost) and then
/// executes it check-free. A block whose cost exceeds the remaining
/// budget traps *before* executing — a deterministic exhaustion point
/// that is identical across both dispatch modes and across fused/unfused
/// streams (fused instructions carry their original costs), and a run
/// completes under a given budget iff it completes under the classic
/// per-instruction accounting (total drain is equal).
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_LANG_VM_H
#define COVERME_LANG_VM_H

#include "lang/Bytecode.h"
#include "lang/Interp.h"
#include "lang/VmWide.h"

#include <memory>
#include <string>
#include <vector>

namespace coverme {

class ExecutionContext; // runtime/ExecutionContext.h

namespace lang {
namespace bc {

struct JitFrame;     // lang/Jit.h
class JitUnit;       // lang/Jit.h
struct JitWideFrame; // lang/JitWide.h

/// Per-thread executor over a shared CompiledUnit.
///
/// Thread-compatible, not thread-safe: one Vm per thread (use
/// threadLocalVm for the Program-body hot path). The unit is kept alive
/// via shared ownership.
class Vm {
public:
  explicit Vm(std::shared_ptr<const CompiledUnit> Unit,
              InterpOptions Opts = {});

  /// Calls function \p FnIndex with entry-parameter lowering (Sect. 5.3):
  /// `double` binds directly, `double *` binds a fresh cell seeded with
  /// the argument, `int` / `unsigned` truncate. \p Args must hold one
  /// double per parameter. Returns the result as double, or NaN on a trap.
  double callEntry(unsigned FnIndex, const double *Args);

  /// Name-resolving overload; traps (NaN) on an unknown function.
  double callEntry(const std::string &Name, const double *Args);

  /// The batched probe entry: runs function \p FnIndex over the \p Count
  /// rows of the row-major matrix \p Xs (each row \p N doubles, N = the
  /// function's parameter count) with entry binding — index resolution,
  /// parameter-cell layout, validation, result-conversion metadata —
  /// done once instead of per probe (per-row state resets remain; they
  /// are what make each row bit-identical to a callEntry of it).
  ///
  /// When an ExecutionContext is installed on this thread, each row is
  /// evaluated as one representing-function probe: the context's
  /// beginRun() fires before the body and Out[I] receives the context's r
  /// afterwards — exactly the RepresentingFunction::BoundRun::eval
  /// sequence, which is what Program::BoundBody::InvokeBatch routes here.
  /// With no context installed, Out[I] is the body's own return value
  /// (NaN on traps), matching a loop of callEntry.
  void runBatch(unsigned FnIndex, const double *Xs, size_t Count, size_t N,
                double *Out);

  /// Resolves \p FnIndex's entry metadata (parameter cell layout, result
  /// conversion) once so repeated probes skip the per-call setup; called
  /// by Program binders before a minimization run. callEntry/runBatch
  /// rebind transparently when asked for a different function.
  void bindEntry(unsigned FnIndex);

  /// True when the last callEntry trapped; trapMessage() says why.
  bool trapped() const { return Trapped; }
  const std::string &trapMessage() const { return Message; }

  const CompiledUnit &unit() const { return *Unit; }
  const InterpOptions &options() const { return Opts; }

  /// True when this build compiled the computed-goto dispatch loop in
  /// (COVERME_VM_CGOTO on a GNU-compatible toolchain).
  static bool cgotoAvailable();

  /// The dispatch loop this Vm resolved to: "cgoto" or "switch".
  const char *dispatchName() const { return CGoto ? "cgoto" : "switch"; }

  /// True when this build compiled the SIMD wide batch lane in
  /// (COVERME_VM_SIMD) *and* the host CPU supports AVX2 — i.e. a Vm with
  /// default options can take the wide lane for eligible functions.
  static bool simdAvailable();

  /// True when runBatch(\p FnIndex, ...) routes groups of wide::kWideLanes
  /// rows through the SIMD lane: simdAvailable(), Simd not forced Off, the
  /// entry valid and not JIT-fragmented, and the function wide-safe (no
  /// global writes in its reachable call graph). Binds the entry.
  bool wideBatchEligible(unsigned FnIndex);

  /// The batch backend this Vm resolves to for \p FnIndex: "jit-wide"
  /// (4-lane native fragments), "vm-wide" (the interpreted SIMD lane),
  /// "scalar-jit" (native fragment rows), or "scalar" (interpreter rows).
  /// Binds the entry.
  const char *batchBackendName(unsigned FnIndex);

  /// Runs the file-scope init routine against a zeroed global arena;
  /// used by the compiler to bake CompiledUnit::GlobalImage. Returns
  /// false on a trap.
  bool runGlobalInit();
  const std::vector<uint8_t> &globalMemory() const { return GlobalMem; }

  /// Reference count of the shared unit (approximate under concurrency);
  /// threadLocalVm uses it to evict cache entries it is the last owner of.
  long unitUseCount() const { return Unit.use_count(); }

  /// Attaches the unit's JIT form (lang/Jit.h). Subsequently bound entries
  /// route their probes to the native fragment when the function has one;
  /// functions the emitter rejected (CanJit false) keep the interpreter
  /// path transparently. A JitUnit built from a different CompiledUnit is
  /// ignored. Resets the current binding so the fragment resolves.
  void attachJit(std::shared_ptr<const JitUnit> J);

  /// The attached JIT form, or null.
  const std::shared_ptr<const JitUnit> &jitUnit() const { return Jit; }

private:
  struct CallFrame {
    uint32_t Base = 0;  ///< Frame arena base of the callee.
    uint32_t RetPC = 0; ///< Caller instruction to resume (or the Halt).
  };

  /// Entry metadata bindEntry caches for the probe fast path.
  struct BoundEntry {
    const FunctionInfo *Fn = nullptr;
    unsigned Index = ~0u;
    uint32_t CellBytes = 0; ///< Pointer-parameter cell bytes below frame 0.
    bool Valid = false;     ///< False: probing traps with InvalidMessage.
    /// Native fragment for the bound function (null: interpreter path).
    void (*Frag)(JitFrame *) = nullptr;
    std::string InvalidMessage;
    /// jitProbe's entry-time work, hoisted to bind time (meaningful only
    /// when Frag is set). The VM's per-probe guards — thunk budget charge,
    /// call depth, stack bytes, operand depth — depend only on the binding
    /// and the options, so their outcome is a per-binding constant:
    /// EntryTrap carries the first guard's trap message (in the VM's check
    /// order) or null when every probe may proceed.
    const char *EntryTrap = nullptr;
    uint64_t StepsAfterThunk = 0; ///< MaxSteps minus the thunk block cost.
    uint32_t EntryNeeded = 0;     ///< CellBytes + FrameBytes.
    /// runBatch may execute this binding on the SIMD wide lane: the Vm
    /// resolved SIMD on, the entry is valid and interpreter-routed (no
    /// JIT fragment), the unit never escapes global addresses, and the
    /// function is WideSafe.
    bool Wide = false;
    /// The 4-lane native fragment (lang/JitWide.h), when the Vm resolved
    /// SIMD on, the entry is fragment-routed with no per-binding entry
    /// trap, and the wide emitter accepted the function. runBatch then
    /// prefers it over every other backend for eligible batch shapes.
    void (*WideFrag)(JitWideFrame *) = nullptr;
  };

  /// Operand-stack capacity, in slots; shared by the scalar stack and the
  /// wide lane's WideState::Stack so depth guards mean the same thing on
  /// both paths.
  static constexpr size_t kOpStackSlots = 16384;

  std::shared_ptr<const CompiledUnit> Unit;
  std::shared_ptr<const JitUnit> Jit; ///< Optional JIT form of Unit.
  InterpOptions Opts;
  bool CGoto = false;             ///< Resolved dispatch mode.
  bool SimdOn = false;            ///< Resolved wide-lane availability.
  std::vector<uint8_t> GlobalMem; ///< Private copy of GlobalImage.
  std::vector<uint8_t> FrameMem;  ///< Frame arena; grows like Interp's.
  std::vector<Slot> OpStack;      ///< Fixed capacity; never reallocates.
  std::vector<CallFrame> Frames;
  BoundEntry Bound;
  uint32_t FrameTop = 0;
  uint64_t StepsLeft = 0;
  bool Trapped = false;
  std::string Message;
  /// Wide-lane state, allocated on the first wide batch (VmWide.cpp).
  std::unique_ptr<wide::WideState> WideSt;

  void trap(const char *Why);

  /// One row of a batch: the context-aware probe sequence
  /// (beginRun + body + read r) or the bare boundProbe, selected at
  /// compile time so the scalar row driver and the wide lane's retirement
  /// path share one definition. CtxT is always ExecutionContext; it is a
  /// parameter only so the body is type-checked at instantiation, where
  /// the including TU (Vm.cpp, VmWide.cpp) has the complete type.
  template <bool HasCtx, typename CtxT = ExecutionContext>
  double probeRow(CtxT *Ctx, const double *Row) {
    if (!HasCtx)
      return boundProbe(Row);
    Ctx->beginRun();
    boundProbe(Row);
    return Ctx->R;
  }

  /// The scalar batch loop: Count rows through probeRow.
  template <bool HasCtx, typename CtxT = ExecutionContext>
  void runRows(CtxT *Ctx, const double *Xs, size_t Count, size_t N,
               double *Out) {
    for (size_t I = 0; I < Count; ++I)
      Out[I] = probeRow<HasCtx>(Ctx, Xs + I * N);
  }

  /// The SIMD wide batch lane (VmWide.cpp; present only in COVERME_VM_SIMD
  /// builds). Runs full groups of wide::kWideLanes rows wide, retires
  /// diverging/trapping rows and the ragged tail through probeRow, and
  /// replays recorded rt::cond logs per row in scalar row order.
  void runBatchWide(ExecutionContext *Ctx, const double *Xs, size_t Count,
                    size_t N, double *Out);

  /// How the wide loop's cond-site handlers treat instrumentation, as a
  /// compile-time mode: 0 = no context installed (hooks vanish), 1 =
  /// generic record-and-replay through ExecutionContext::evalCond, 2 =
  /// the fast in-loop pen/trace path for the plain FOO_R configuration
  /// (see VmWide.h). runBatchWide picks per batch.
  enum : int { WideCtxNone = 0, WideCtxReplay = 1, WideCtxFast = 2 };

  template <int CtxMode>
  void runBatchWideImpl(ExecutionContext *Ctx, const double *Xs,
                        size_t Count, size_t N, double *Out);

  /// The wide-JIT batch driver (JitWide.cpp): full groups of
  /// wide::kWideLanes rows through the bound 4-lane native fragment, with
  /// the wide lane's retirement protocol (retired rows re-run through
  /// probeRow, i.e. the scalar fragment), its low-completion backoff to
  /// the scalar loop, and the same end-of-batch context materialization.
  void runBatchJitWide(ExecutionContext *Ctx, const double *Xs, size_t Count,
                       size_t N, double *Out);

  /// One wide probe group: per-group reset, parameter marshal into the
  /// interleaved arena, wide dispatch from the bound thunk, and result
  /// conversion into WideState::Result. Returns the lanes that completed
  /// wide; the caller re-runs the rest scalar.
  template <int CtxMode>
  wide::LaneMask probeGroupWide(const double *Group, size_t N);

  /// Wide dispatch from \p StartPC until Halt or full retirement. \p SPOut
  /// receives the operand-stack depth at Halt. Returns the lanes still
  /// active at Halt (0 when every lane retired).
  template <int CtxMode>
  wide::LaneMask execWide(uint32_t StartPC, size_t SP0,
                          wide::LaneMask Active0, size_t *SPOut);
  template <int CtxMode>
  wide::LaneMask execWideSwitch(uint32_t StartPC, size_t SP0,
                                wide::LaneMask Active0, size_t *SPOut);
  template <int CtxMode>
  wide::LaneMask execWideCGoto(uint32_t StartPC, size_t SP0,
                               wide::LaneMask Active0, size_t *SPOut);

  /// One probe of the bound entry: the per-call tail of callEntry with
  /// the binding work already done.
  double boundProbe(const double *Args);

  /// The JIT path of boundProbe: replays the VM's per-probe reset, budget
  /// charges, guard traps and parameter marshaling in the exact order,
  /// then runs the native fragment and maps its exit back to the VM's
  /// trap strings and result conversion.
  double jitProbe(const double *Args);

  /// Resolves a checked pointer access; null on trap.
  uint8_t *resolve(uint64_t Ptr, unsigned Size);

  /// Dispatch from \p StartPC until Halt or trap. \p SP0 is the operand-
  /// stack depth on entry; returns the depth on exit. Routes to the
  /// resolved dispatch loop; both loops share their handler bodies.
  size_t exec(uint32_t StartPC, size_t SP0);
  size_t execSwitch(uint32_t StartPC, size_t SP0);
  size_t execCGoto(uint32_t StartPC, size_t SP0);
};

/// The per-thread Vm for \p Unit, created on first use. This is what
/// Program bodies call: the cache makes the body reentrant (each campaign
/// worker gets its own Vm) without per-evaluation construction cost.
/// \p Opts is honored on first use per (thread, unit).
Vm &threadLocalVm(const std::shared_ptr<const CompiledUnit> &Unit,
                  const InterpOptions &Opts);

/// As above, and attaches \p Jit (when non-null) the first time this
/// thread's Vm for the unit is seen without one — the JIT-tier Program
/// bodies' entry point.
Vm &threadLocalVm(const std::shared_ptr<const CompiledUnit> &Unit,
                  const InterpOptions &Opts,
                  const std::shared_ptr<const JitUnit> &Jit);

} // namespace bc
} // namespace lang
} // namespace coverme

#endif // COVERME_LANG_VM_H
