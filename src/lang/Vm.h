//===- Vm.h - Stack VM for the compiled mini-C tier -----------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes lang/Bytecode.h programs. One Vm is one thread's execution
/// state — operand stack, frame arena, private copy of the global arena,
/// step budget — over a shared immutable CompiledUnit, which is what lets
/// VM-backed Programs declare ThreadSafeBody and shard across the
/// CampaignEngine's workers (compile once, run per thread).
///
/// Semantics match lang/Interp observably: entry-parameter lowering
/// (Sect. 5.3), the arena memory model with identical pointer encoding,
/// rt::cond hooks at the same Sema-numbered sites in the same order, and
/// total execution — every trap (OOB, null deref, division by zero,
/// budget exhaustion) abandons the call and surfaces as NaN. The
/// InterpOptions budgets carry the same meaning on both tiers: MaxSteps
/// bounds units of work (AST nodes there, instructions here), so a loop
/// that exhausts the budget yields NaN rather than hanging either way.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_LANG_VM_H
#define COVERME_LANG_VM_H

#include "lang/Bytecode.h"
#include "lang/Interp.h"

#include <memory>
#include <string>
#include <vector>

namespace coverme {
namespace lang {
namespace bc {

/// Per-thread executor over a shared CompiledUnit.
///
/// Thread-compatible, not thread-safe: one Vm per thread (use
/// threadLocalVm for the Program-body hot path). The unit is kept alive
/// via shared ownership.
class Vm {
public:
  explicit Vm(std::shared_ptr<const CompiledUnit> Unit,
              InterpOptions Opts = {});

  /// Calls function \p FnIndex with entry-parameter lowering (Sect. 5.3):
  /// `double` binds directly, `double *` binds a fresh cell seeded with
  /// the argument, `int` / `unsigned` truncate. \p Args must hold one
  /// double per parameter. Returns the result as double, or NaN on a trap.
  double callEntry(unsigned FnIndex, const double *Args);

  /// Name-resolving overload; traps (NaN) on an unknown function.
  double callEntry(const std::string &Name, const double *Args);

  /// True when the last callEntry trapped; trapMessage() says why.
  bool trapped() const { return Trapped; }
  const std::string &trapMessage() const { return Message; }

  const CompiledUnit &unit() const { return *Unit; }
  const InterpOptions &options() const { return Opts; }

  /// Runs the file-scope init routine against a zeroed global arena;
  /// used by the compiler to bake CompiledUnit::GlobalImage. Returns
  /// false on a trap.
  bool runGlobalInit();
  const std::vector<uint8_t> &globalMemory() const { return GlobalMem; }

  /// Reference count of the shared unit (approximate under concurrency);
  /// threadLocalVm uses it to evict cache entries it is the last owner of.
  long unitUseCount() const { return Unit.use_count(); }

private:
  struct CallFrame {
    uint32_t Base = 0;  ///< Frame arena base of the callee.
    uint32_t RetPC = 0; ///< Caller instruction to resume (or the Halt).
  };

  std::shared_ptr<const CompiledUnit> Unit;
  InterpOptions Opts;
  std::vector<uint8_t> GlobalMem; ///< Private copy of GlobalImage.
  std::vector<uint8_t> FrameMem;  ///< Frame arena; grows like Interp's.
  std::vector<Slot> OpStack;      ///< Fixed capacity; never reallocates.
  std::vector<CallFrame> Frames;
  uint32_t FrameTop = 0;
  uint64_t StepsLeft = 0;
  bool Trapped = false;
  std::string Message;

  void trap(const char *Why);

  /// Resolves a checked pointer access; null on trap.
  uint8_t *resolve(uint64_t Ptr, unsigned Size);

  /// Dispatch loop from \p StartPC until Halt or trap. \p SP0 is the
  /// operand-stack depth on entry; returns the depth on exit.
  size_t exec(uint32_t StartPC, size_t SP0);
};

/// The per-thread Vm for \p Unit, created on first use. This is what
/// Program bodies call: the cache makes the body reentrant (each campaign
/// worker gets its own Vm) without per-evaluation construction cost.
/// \p Opts is honored on first use per (thread, unit).
Vm &threadLocalVm(const std::shared_ptr<const CompiledUnit> &Unit,
                  const InterpOptions &Opts);

} // namespace bc
} // namespace lang
} // namespace coverme

#endif // COVERME_LANG_VM_H
