//===- VmWide.cpp - SIMD wide batch lane for the bytecode VM --------------===//
//
// The only translation unit in the tree compiled with -mavx2 (see
// src/lang/CMakeLists.txt); everything here is unreachable unless the
// runtime cpuHasAvx2() check passed, so no AVX instruction can execute on
// a host without the feature. The wide dispatch loops live in
// VmWideBody.inc, included twice below exactly like the scalar pair —
// once as the portable switch loop, once as computed-goto threading — so
// InterpOptions::Dispatch means the same thing on both the scalar and the
// wide path.
//
// Identity argument, in one place: a wide group either completes a lane —
// in which case every instruction it executed computed, lane for lane,
// the same bits the scalar handler computes (AVX2 packed double ops match
// lang/FpSemantics.h's pinned SSE NaN rule; integer/builtin/conversion
// work reuses the very same detail:: helpers) over the same instruction
// sequence (lanes that would diverge retire at the branch that splits
// them) — or it retires the lane, and the row re-runs from scratch on
// boundProbe, the path whose bits are the definition of correct. rt::cond
// accumulation is record-and-replay (see VmWide.h), so per-row FOO_R
// values, traces, and coverage hits are those of row-at-a-time execution.
//
//===----------------------------------------------------------------------===//

#include "lang/Vm.h"

#include "runtime/ExecutionContext.h"
#include "runtime/SaturationTable.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <immintrin.h>
#include <limits>

#if !defined(__AVX2__)
#error "VmWide.cpp must be compiled with -mavx2 (see src/lang/CMakeLists.txt)"
#endif

using namespace coverme;
using namespace coverme::lang;
using namespace coverme::lang::bc;

#if defined(COVERME_VM_CGOTO) && (defined(__GNUC__) || defined(__clang__))
#define COVERME_VM_CGOTO_ENABLED 1
#else
#define COVERME_VM_CGOTO_ENABLED 0
#endif

// Shared scalar helpers, defined in Vm.cpp (see the note there): the wide
// lane must call the very same routines so no libm, rounding, or compare
// drift between the lanes and the scalar re-runs is possible.
namespace coverme {
namespace lang {
namespace bc {
namespace detail {
int32_t truncToInt32(double V);
uint32_t truncToUInt32(double V);
bool evalCmp(CmpOp Op, double L, double R);
double runBuiltin(BuiltinId Id, double A, double B, int32_t N);
} // namespace detail
} // namespace bc
} // namespace lang
} // namespace coverme

using coverme::lang::bc::detail::evalCmp;
using coverme::lang::bc::detail::runBuiltin;
using coverme::lang::bc::detail::truncToInt32;
using coverme::lang::bc::detail::truncToUInt32;

namespace {

// Integer comparisons on already-widened operands; token-identical to
// detail::evalCmpInt in Vm.cpp (a template has no out-of-line home to
// share, and the switch is small enough that duplication beats exporting
// explicit instantiations).
template <typename T> bool evalCmpInt(CmpOp Op, T L, T R) {
  switch (Op) {
  case CmpOp::EQ:
    return L == R;
  case CmpOp::NE:
    return L != R;
  case CmpOp::LT:
    return L < R;
  case CmpOp::LE:
    return L <= R;
  case CmpOp::GT:
    return L > R;
  case CmpOp::GE:
    return L >= R;
  }
  assert(false && "unknown CmpOp");
  return false;
}

// WideSlot is 32-byte aligned and the Slot union's object representation
// is its 8 value bytes, so whole-slot vector moves are aligned and
// intrinsic vector types may alias anything (GCC/Clang define them
// __may_alias__).
inline __m256d wloadD(const wide::WideSlot &S) {
  return _mm256_load_pd(reinterpret_cast<const double *>(S.L));
}

inline void wstoreD(wide::WideSlot &S, __m256d V) {
  _mm256_store_pd(reinterpret_cast<double *>(S.L), V);
}

/// All four lanes of the 8-byte frame value at logical offset \p Off —
/// one aligned 32-byte load, because an 8-aligned logical slot is exactly
/// one interleave granule (see VmWide.h). Frame doubles are always
/// 8-aligned: Sema aligns every slot and pointer-parameter cell.
inline __m256d wframeLoadD(const uint8_t *FW, uint32_t Off) {
  return _mm256_load_pd(
      reinterpret_cast<const double *>(FW + wide::granuleByte(Off)));
}

inline void wframeStoreD(uint8_t *FW, uint32_t Off, __m256d V) {
  _mm256_store_pd(reinterpret_cast<double *>(FW + wide::granuleByte(Off)), V);
}

/// Scalar NegD is `-x`: a sign-bit flip with no NaN quieting on x86-64,
/// which is exactly what xor with -0.0 does per lane.
inline __m256d wnegD(__m256d V) {
  return _mm256_xor_pd(V, _mm256_set1_pd(-0.0));
}

/// Per-lane checked pointer resolution — the wide counterpart of
/// Vm::resolve. Null means "retire this lane": a genuine trap (null, OOB)
/// the scalar re-run will reproduce, or an access the wide layout cannot
/// express (granule-straddling frame bytes, any global store — the wide
/// group shares one read-only global image).
inline uint8_t *wideResolveLane(uint64_t Ptr, unsigned Size, unsigned Lane,
                                uint8_t *FW, uint32_t FrameBytes,
                                uint8_t *GMem, size_t GSize, bool IsStore) {
  switch (ptrSpace(Ptr)) {
  case Space::Global: {
    if (IsStore)
      return nullptr;
    uint64_t Off = ptrOffset(Ptr);
    if (Off + Size > GSize)
      return nullptr;
    return GMem + Off;
  }
  case Space::Frame: {
    uint32_t Off = ptrOffset(Ptr);
    if (static_cast<uint64_t>(Off) + Size > FrameBytes)
      return nullptr;
    if ((Off & 7u) + Size > 8u)
      return nullptr; // straddles an interleave granule
    return FW + wide::laneByte(Off, Lane);
  }
  default:
    return nullptr; // Space::Null or a garbage tag: scalar traps
  }
}

/// ZeroF over the interleaved arena: whole granules as one 32-byte memset
/// (ZeroF offsets are 8-aligned — Sema-placed aggregates — making this
/// the only path in practice), ragged edges per lane.
inline void wideZeroFrame(uint8_t *FW, uint32_t Off, uint32_t Len) {
  while (Len) {
    uint32_t In = Off & 7u;
    uint32_t Chunk = 8u - In < Len ? 8u - In : Len;
    if (Chunk == 8u) {
      std::memset(FW + wide::granuleByte(Off), 0, sizeof(wide::WideSlot));
    } else {
      for (unsigned L = 0; L < wide::kWideLanes; ++L)
        std::memset(FW + wide::laneByte(Off, L), 0, Chunk);
    }
    Off += Chunk;
    Len -= Chunk;
  }
}

/// Packed evalCmpOp: NaN must make every ordered comparison false and !=
/// true, which is exactly the ordered-quiet / unordered-quiet predicate
/// split of vcmppd.
inline __m256d wideCmp(CmpOp Op, __m256d A, __m256d B) {
  switch (Op) {
  case CmpOp::EQ:
    return _mm256_cmp_pd(A, B, _CMP_EQ_OQ);
  case CmpOp::NE:
    return _mm256_cmp_pd(A, B, _CMP_NEQ_UQ);
  case CmpOp::LT:
    return _mm256_cmp_pd(A, B, _CMP_LT_OQ);
  case CmpOp::LE:
    return _mm256_cmp_pd(A, B, _CMP_LE_OQ);
  case CmpOp::GT:
    return _mm256_cmp_pd(A, B, _CMP_GT_OQ);
  case CmpOp::GE:
    return _mm256_cmp_pd(A, B, _CMP_GE_OQ);
  }
  assert(false && "unknown CmpOp");
  return _mm256_setzero_pd();
}

/// Packed branchDistance (Def. 4.1), bit-identical to the scalar per lane:
/// same sub/mul/add sequence (neither the scalar TU nor this one enables
/// FMA, so no contraction can split them), satisfied lanes masked to +0.0
/// by andnot exactly where the scalar returns the 0.0 literal, and GE/GT
/// recompute the swapped-operand diff just like the scalar recursion.
inline __m256d wideDist(CmpOp Op, __m256d A, __m256d B, __m256d Eps) {
  const __m256d Diff = _mm256_sub_pd(A, B);
  switch (Op) {
  case CmpOp::EQ:
    return _mm256_mul_pd(Diff, Diff);
  case CmpOp::NE:
    return _mm256_andnot_pd(_mm256_cmp_pd(A, B, _CMP_NEQ_UQ), Eps);
  case CmpOp::LE:
    return _mm256_andnot_pd(_mm256_cmp_pd(A, B, _CMP_LE_OQ),
                            _mm256_mul_pd(Diff, Diff));
  case CmpOp::LT:
    return _mm256_andnot_pd(_mm256_cmp_pd(A, B, _CMP_LT_OQ),
                            _mm256_add_pd(_mm256_mul_pd(Diff, Diff), Eps));
  case CmpOp::GE:
    return wideDist(CmpOp::LE, B, A, Eps);
  case CmpOp::GT:
    return wideDist(CmpOp::LT, B, A, Eps);
  }
  assert(false && "unknown CmpOp");
  return _mm256_setzero_pd();
}

/// The fast hook route (WideCtxFast, see VmWide.h): pen for one cond site,
/// all lanes at once, against the batch's frozen saturation state.
/// Decomposes ExecutionContext::evalCond for the minimizer configuration
/// (pen on, trace on, no coverage, no operand recording): the outcome bits
/// are one packed compare + movmskpd, and r is *replaced* per site —
/// Definition 4.2's arm logic — across the whole RWide slot. No lane mask
/// anywhere: lanes retired earlier get garbage outcome/r values, but only
/// lanes that finish wide are ever read, and those were active at every
/// site. The arm saturation flags are loop-invariant per site because
/// nothing mutates the table during a batch.
inline void widePen(wide::WideState &W, uint32_t Site, CmpOp Op,
                    const wide::WideSlot &Av, const wide::WideSlot &Bv) {
  const __m256d A = wloadD(Av), B = wloadD(Bv);
  W.CondLog.push_back(
      {Site, static_cast<uint8_t>(_mm256_movemask_pd(wideCmp(Op, A, B)))});
  const bool TrueArm = W.Table->isSaturated({Site, true});
  const bool FalseArm = W.Table->isSaturated({Site, false});
  if (TrueArm && FalseArm)
    return; // site can no longer guide the search: keep the previous r
  __m256d R;
  if (!TrueArm && !FalseArm)
    R = _mm256_setzero_pd();
  else if (!TrueArm)
    R = wideDist(Op, A, B, _mm256_set1_pd(W.Epsilon));
  else
    R = wideDist(negateCmpOp(Op), A, B, _mm256_set1_pd(W.Epsilon));
  wstoreD(W.RWide, R);
}

} // namespace

template <int CtxMode>
wide::LaneMask Vm::execWideSwitch(uint32_t StartPC, size_t SP0,
                                  wide::LaneMask Active0, size_t *SPOut) {
#define VM_USE_CGOTO 0
#include "lang/VmWideBody.inc"
#undef VM_USE_CGOTO
}

template <int CtxMode>
wide::LaneMask Vm::execWideCGoto(uint32_t StartPC, size_t SP0,
                                 wide::LaneMask Active0, size_t *SPOut) {
#if COVERME_VM_CGOTO_ENABLED
#define VM_USE_CGOTO 1
#include "lang/VmWideBody.inc"
#undef VM_USE_CGOTO
#else
  return execWideSwitch<CtxMode>(StartPC, SP0, Active0, SPOut);
#endif
}

template <int CtxMode>
wide::LaneMask Vm::execWide(uint32_t StartPC, size_t SP0,
                            wide::LaneMask Active0, size_t *SPOut) {
#if COVERME_VM_CGOTO_ENABLED
  if (CGoto)
    return execWideCGoto<CtxMode>(StartPC, SP0, Active0, SPOut);
#endif
  return execWideSwitch<CtxMode>(StartPC, SP0, Active0, SPOut);
}

template <int CtxMode>
wide::LaneMask Vm::probeGroupWide(const double *Group, size_t N) {
  const FunctionInfo &F = *Bound.Fn;
  wide::WideState &W = *WideSt;
  if (CtxMode == WideCtxReplay) {
    for (unsigned L = 0; L < wide::kWideLanes; ++L)
      W.HookLog[L].clear();
  } else if (CtxMode == WideCtxFast) {
    W.CondLog.clear();
    for (unsigned L = 0; L < wide::kWideLanes; ++L)
      W.RWide.L[L].D = 1.0; // beginRun's r = 1.0
  }

  // The per-probe reset of boundProbe, once per group: active lanes run
  // in lockstep, so the shared budget/frame trajectory is every lane's
  // own scalar trajectory. Shrinking the arena to the cell prefix and
  // zero-filling on later growth reproduces the scalar FrameMem dance
  // per lane granule for granule (Bound.CellBytes is 8-aligned).
  StepsLeft = Opts.MaxSteps;
  Frames.clear();
  W.Frame.resize(Bound.CellBytes >> 3);
  W.FrameBytes = Bound.CellBytes;
  FrameTop = Bound.CellBytes;
  uint8_t *FW = reinterpret_cast<uint8_t *>(W.Frame.data());

  size_t SP = 0;
  uint32_t NextCell = 0;
  for (size_t P = 0; P < F.ParamTypes.size(); ++P) {
    const Type T = F.ParamTypes[P];
    wide::WideSlot &S = W.Stack[SP++];
    if (T.isPointer()) {
      uint64_t Ptr = encodePtr(Space::Frame, NextCell);
      for (unsigned L = 0; L < wide::kWideLanes; ++L) {
        std::memcpy(FW + wide::laneByte(NextCell, L), &Group[L * N + P], 8);
        S.L[L].U = Ptr;
      }
      NextCell += 8;
    } else {
      for (unsigned L = 0; L < wide::kWideLanes; ++L) {
        Slot V{};
        switch (T.Base) {
        case BaseType::Double:
          V.D = Group[L * N + P];
          break;
        case BaseType::Int:
          V.I = truncToInt32(Group[L * N + P]);
          break;
        case BaseType::UInt:
          V.U = truncToUInt32(Group[L * N + P]);
          break;
        case BaseType::Void:
          break; // unreachable: bindEntry flagged void parameters
        }
        S.L[L] = V;
      }
    }
  }

  size_t EndSP = 0;
  wide::LaneMask Done = execWide<CtxMode>(F.Thunk, SP, wide::kAllLanes, &EndSP);
  if (!Done)
    return 0;
  if (F.ReturnType.isPointer())
    return 0; // scalar re-runs reproduce "pointer used as a number"
  if (F.ReturnType.isVoid()) {
    for (unsigned L = 0; L < wide::kWideLanes; ++L)
      W.Result[L] = 0.0;
    return Done;
  }
  assert(EndSP >= 1 && "entry call left no result");
  const wide::WideSlot &R = W.Stack[EndSP - 1];
  for (unsigned L = 0; L < wide::kWideLanes; ++L) {
    switch (F.ReturnType.Base) {
    case BaseType::Double:
      W.Result[L] = R.L[L].D;
      break;
    case BaseType::Int:
      W.Result[L] = static_cast<double>(R.L[L].I);
      break;
    case BaseType::UInt:
      W.Result[L] = static_cast<double>(static_cast<uint32_t>(R.L[L].U));
      break;
    case BaseType::Void:
      W.Result[L] = 0.0;
      break;
    }
  }
  return Done;
}

template <int CtxMode>
void Vm::runBatchWideImpl(ExecutionContext *Ctx, const double *Xs,
                          size_t Count, size_t N, double *Out) {
  constexpr bool HasCtx = CtxMode != WideCtxNone;
  wide::WideState &W = *WideSt;

  // Adaptive divergence backoff: a subject whose rows take data-dependent
  // paths (digit loops, iteration-to-convergence) completes few lanes per
  // group and pays the wide setup on top of near-full scalar re-runs.
  // Three consecutive groups finishing fewer than two lanes hand the rest
  // of the batch to the plain scalar loop below.
  unsigned BadStreak = 0;

  bool LastRowWide = false;
  size_t I = 0;
  for (; I + wide::kWideLanes <= Count && BadStreak < 3;
       I += wide::kWideLanes) {
    const double *Group = Xs + I * N;
    wide::LaneMask Done = probeGroupWide<CtxMode>(Group, N);
    // Finalize rows in scalar row order, so context accumulation —
    // coverage hits, trace entries, saturation observations — interleaves
    // exactly as the row-at-a-time loop would have produced it.
    for (unsigned L = 0; L < wide::kWideLanes; ++L) {
      if (Done & wide::laneBit(L)) {
        if (CtxMode == WideCtxReplay) {
          Ctx->beginRun();
          for (const wide::WideHookRec &H : W.HookLog[L])
            Ctx->evalCond(H.Site, H.Op, H.A, H.B);
          Out[I + L] = Ctx->R;
        } else if (CtxMode == WideCtxFast) {
          // The handlers already accumulated this row's pen (widePen);
          // the lane's running r IS the row's FOO_R value. Nothing reads
          // the context between the rows of one batch in this
          // configuration, so the context's observable end state — the
          // LAST row's r and trace — is materialized once after the loop.
          Out[I + L] = W.RWide.L[L].D;
        } else {
          Out[I + L] = W.Result[L];
        }
      } else {
        Out[I + L] = probeRow<HasCtx>(Ctx, Group + L * N);
      }
    }
    const unsigned Completed =
        static_cast<unsigned>(__builtin_popcount(static_cast<unsigned>(Done)));
    BadStreak = Completed < 2 ? BadStreak + 1 : 0;
    LastRowWide = (Done >> (wide::kWideLanes - 1)) & 1u;
  }
  // Ragged tail — and, after a backoff, everything that remains.
  for (; I < Count; ++I) {
    Out[I] = probeRow<HasCtx>(Ctx, Xs + I * N);
    LastRowWide = false;
  }

  // A row that completed wide never touched the trap flags (or, in fast
  // hook mode, the context); give it the observable end state of its
  // successful scalar probe. Retired rows mid-batch ran probeRow and left
  // their own state; if the last row retired, that state is already
  // correct and LastRowWide is false.
  if (LastRowWide) {
    Trapped = false;
    if (!Message.empty())
      Message.clear();
    if (CtxMode == WideCtxFast) {
      constexpr unsigned Last = wide::kWideLanes - 1;
      Ctx->beginRun();
      Ctx->Trace.reserve(W.CondLog.size());
      for (const wide::WideCondRec &C : W.CondLog)
        Ctx->Trace.push_back({C.Site, ((C.Outcomes >> Last) & 1u) != 0});
      Ctx->R = W.RWide.L[Last].D;
    }
  }
}

void Vm::runBatchWide(ExecutionContext *Ctx, const double *Xs, size_t Count,
                      size_t N, double *Out) {
  assert(Bound.Wide && "runBatchWide on a non-wide binding");
  if (!WideSt) {
    WideSt.reset(new wide::WideState());
    WideSt->Stack.resize(kOpStackSlots);
  }
  if (!Ctx) {
    runBatchWideImpl<WideCtxNone>(nullptr, Xs, Count, N, Out);
    return;
  }
  // The fast hook route applies to exactly the context shape a minimizer's
  // FOO_R evaluation installs; anything else (coverage sink, operand
  // recording, trace off) takes the general record-and-replay route.
  const bool Fast = Ctx->PenEnabled && !Ctx->Coverage && Ctx->TraceEnabled &&
                    !Ctx->RecordTraceOperands && !Ctx->RecordOperands;
  if (Fast) {
    WideSt->Table = &Ctx->saturation();
    WideSt->Epsilon = Ctx->Epsilon;
    runBatchWideImpl<WideCtxFast>(Ctx, Xs, Count, N, Out);
  } else {
    runBatchWideImpl<WideCtxReplay>(Ctx, Xs, Count, N, Out);
  }
}
