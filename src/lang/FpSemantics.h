//===- FpSemantics.h - Pinned IEEE binary-op semantics --------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one definition of double +, -, *, / that every execution tier
/// shares. Plain C++ `A + B` is not bit-deterministic across translation
/// units when an operand is NaN: the operation is commutative for values,
/// so the compiler freely swaps operands, and the hardware resolves
/// two-NaN inputs by returning the *first* source operand — which NaN
/// payload survives depends on register allocation. The tree-walker, the
/// VM and the JIT are compiled separately (the JIT emits addsd/mulsd
/// directly), so "bit-identical across tiers" requires pinning the
/// selection rule in source, not hoping three compilations agree.
///
/// The rule pinned here is exactly x86-64 SSE's (addsd/subsd/mulsd/divsd):
/// if the first operand is NaN, the result is that NaN quieted; else if
/// the second is NaN, that NaN quieted; else the IEEE result (whose NaN
/// cases — inf-inf, 0*inf, 0/0 — are order-independent defaults). The JIT
/// therefore implements this header by construction, and the two
/// interpreters implement it by calling it.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_LANG_FPSEMANTICS_H
#define COVERME_LANG_FPSEMANTICS_H

#include <cmath>
#include <cstdint>
#include <cstring>

namespace coverme {
namespace lang {
namespace fp {

/// A NaN as SSE propagates it: quiet bit set, sign and payload kept.
inline double quietNaN(double A) {
  uint64_t Bits;
  std::memcpy(&Bits, &A, 8);
  Bits |= 1ull << 51;
  std::memcpy(&A, &Bits, 8);
  return A;
}

inline double addD(double A, double B) {
  if (std::isnan(A))
    return quietNaN(A);
  if (std::isnan(B))
    return quietNaN(B);
  return A + B;
}

inline double subD(double A, double B) {
  if (std::isnan(A))
    return quietNaN(A);
  if (std::isnan(B))
    return quietNaN(B);
  return A - B;
}

inline double mulD(double A, double B) {
  if (std::isnan(A))
    return quietNaN(A);
  if (std::isnan(B))
    return quietNaN(B);
  return A * B;
}

inline double divD(double A, double B) {
  if (std::isnan(A))
    return quietNaN(A);
  if (std::isnan(B))
    return quietNaN(B);
  return A / B; // IEEE: /0 yields inf/NaN
}

} // namespace fp
} // namespace lang
} // namespace coverme

#endif // COVERME_LANG_FPSEMANTICS_H
