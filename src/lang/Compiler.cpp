//===- Compiler.cpp - AST to bytecode lowering ----------------------------===//
//
// The lowering mirrors the tree-walker's evaluation order statement by
// statement so that hook firings, trap points, and every floating-point
// operation sequence are observably identical between the two tiers (the
// contract tests/VmDifferentialTest.cpp enforces). Where the interpreter
// decides an operation by the *runtime* types of its operands, the
// compiler decides by the Sema-cached static types — in this subset the
// two always agree, which is what makes an untagged VM sound.
//
// One documented deviation: argument conversions for calls are emitted
// inline after each argument instead of after all arguments. Conversions
// are pure, so this can only reorder *which trap fires first* when a
// later argument traps and an earlier argument's conversion would also
// trap (both runs still trap to NaN).

#include "lang/Compiler.h"

#include "lang/Vm.h"

#include <map>
#include <unordered_map>

using namespace coverme;
using namespace coverme::lang;
using namespace coverme::lang::bc;

namespace {

/// Static type classes the opcode selection keys on.
enum class TC : uint8_t { I, U, D, P, V };

TC tc(Type T) {
  if (T.isPointer())
    return TC::P;
  switch (T.Base) {
  case BaseType::Int:
    return TC::I;
  case BaseType::UInt:
    return TC::U;
  case BaseType::Double:
    return TC::D;
  case BaseType::Void:
    return TC::V;
  }
  assert(false && "unknown BaseType");
  return TC::V;
}

struct BuiltinEntry {
  const char *Name;
  BuiltinId Id;
  unsigned Arity;
};

const BuiltinEntry *findBuiltin(const std::string &Name) {
  static const BuiltinEntry Table[] = {
      {"fabs", BuiltinId::Fabs, 1},     {"sqrt", BuiltinId::Sqrt, 1},
      {"sin", BuiltinId::Sin, 1},       {"cos", BuiltinId::Cos, 1},
      {"tan", BuiltinId::Tan, 1},       {"asin", BuiltinId::Asin, 1},
      {"acos", BuiltinId::Acos, 1},     {"atan", BuiltinId::Atan, 1},
      {"exp", BuiltinId::Exp, 1},       {"log", BuiltinId::Log, 1},
      {"log10", BuiltinId::Log10, 1},   {"log1p", BuiltinId::Log1p, 1},
      {"expm1", BuiltinId::Expm1, 1},   {"floor", BuiltinId::Floor, 1},
      {"ceil", BuiltinId::Ceil, 1},     {"rint", BuiltinId::Rint, 1},
      {"trunc", BuiltinId::Trunc, 1},   {"cbrt", BuiltinId::Cbrt, 1},
      {"sinh", BuiltinId::Sinh, 1},     {"cosh", BuiltinId::Cosh, 1},
      {"tanh", BuiltinId::Tanh, 1},     {"j0", BuiltinId::J0, 1},
      {"j1", BuiltinId::J1, 1},         {"y0", BuiltinId::Y0, 1},
      {"y1", BuiltinId::Y1, 1},         {"pow", BuiltinId::Pow, 2},
      {"fmod", BuiltinId::Fmod, 2},     {"atan2", BuiltinId::Atan2, 2},
      {"hypot", BuiltinId::Hypot, 2},   {"copysign", BuiltinId::Copysign, 2},
      {"fmin", BuiltinId::Fmin, 2},     {"fmax", BuiltinId::Fmax, 2},
      {"scalbn", BuiltinId::Scalbn, 2}, {"ldexp", BuiltinId::Scalbn, 2},
  };
  for (const BuiltinEntry &E : Table)
    if (Name == E.Name)
      return &E;
  return nullptr;
}

/// Usual arithmetic conversions, same ladder as Sema and the interpreter.
Type usualArithmetic(Type L, Type R) {
  if (L.Base == BaseType::Double || R.Base == BaseType::Double)
    return Type(BaseType::Double);
  if (L.Base == BaseType::UInt || R.Base == BaseType::UInt)
    return Type(BaseType::UInt);
  return Type(BaseType::Int);
}

/// The syntax-directed lowering pass; one instance per translation unit.
class Compiler {
public:
  Compiler(const TranslationUnit &TU, CompiledUnit &U) : TU(TU), U(U) {}

  bool run();

  std::string Error;

private:
  const TranslationUnit &TU;
  CompiledUnit &U;
  const FunctionDecl *CurFn = nullptr;
  int CurDepth = 0;
  int MaxDepth = 0;

  struct LoopCtx {
    std::vector<uint32_t> Breaks;    ///< Jump indices to patch to loop end.
    std::vector<uint32_t> Continues; ///< ... to the continue target.
  };
  std::vector<LoopCtx> Loops;
  /// break/continue outside any loop unwind to the function epilogue,
  /// exactly as the interpreter's Flow propagation does.
  std::vector<uint32_t> EpiloguePatches;

  std::map<uint64_t, uint32_t> DPool; ///< Double bits -> pool index.
  std::map<std::string, uint32_t> Traps;
  std::unordered_map<const FunctionDecl *, uint32_t> FnIndex;

  // ----- emission ----------------------------------------------------------

  uint32_t here() const { return static_cast<uint32_t>(U.Code.size()); }

  uint32_t emit(Op O, uint32_t A = 0, uint32_t B = 0, int Delta = 0) {
    U.Code.push_back({O, /*Cost=*/1, A, B});
    adj(Delta);
    return static_cast<uint32_t>(U.Code.size() - 1);
  }

  void adj(int Delta) {
    CurDepth += Delta;
    assert(CurDepth >= 0 && "operand stack underflow at compile time");
    if (CurDepth > MaxDepth)
      MaxDepth = CurDepth;
  }

  void patch(uint32_t Idx) { U.Code[Idx].A = here(); }
  void patchTo(uint32_t Idx, uint32_t Target) { U.Code[Idx].A = Target; }

  uint32_t dconst(double V) {
    uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(V), "IEEE binary64 expected");
    __builtin_memcpy(&Bits, &V, sizeof(Bits));
    // Deduplicate by bit pattern (0.0 and -0.0 stay distinct slots): every
    // repeated literal — Fdlibm sources repeat `one`, `0.5`, `2**52`-style
    // constants heavily — reuses its pool index. OptStats records the
    // request/slot ratio so LangTest can pin the dedup.
    ++U.Stats.PoolRequests;
    auto It = DPool.find(Bits);
    if (It != DPool.end())
      return It->second;
    uint32_t Idx = static_cast<uint32_t>(U.DoublePool.size());
    U.DoublePool.push_back(V);
    DPool.emplace(Bits, Idx);
    return Idx;
  }

  uint32_t trapMsg(const std::string &Why) {
    auto It = Traps.find(Why);
    if (It != Traps.end())
      return It->second;
    uint32_t Idx = static_cast<uint32_t>(U.TrapMessages.size());
    U.TrapMessages.push_back(Why);
    Traps.emplace(Why, Idx);
    return Idx;
  }

  bool fail(const std::string &Why) {
    if (Error.empty())
      Error = Why;
    return false;
  }

  // ----- helpers -----------------------------------------------------------

  /// Emits the conversion of the top slot from \p From to \p To, following
  /// Interpreter::convert (including its traps for pointer misuse).
  bool genConvert(Type From, Type To);

  /// Emits a typed checked load/store through a pointer on the stack.
  bool genLoad(Type Ty);
  bool genStore(Type Ty, bool Keep);

  /// Pushes the address of \p D (fused frame/global addressing).
  void genVarAddr(const VarDecl &D) {
    if (D.Storage == StorageKind::Global)
      emit(Op::AddrG, D.ByteOffset, 0, +1);
    else
      emit(Op::AddrF, D.ByteOffset, 0, +1);
  }

  /// Emits the fused load of scalar variable \p D.
  bool genVarLoad(const VarDecl &D);
  /// Emits the fused store to scalar variable \p D.
  bool genVarStore(const VarDecl &D, bool Keep);

  /// Truthiness of the top slot (typed); \p Ty may be void (always false).
  void genBool(Type Ty);

  /// Emits a conditional jump consuming the top slot; returns the index
  /// to patch. \p Ty selects the typed test; \p WhenTrue picks Jt vs Jf.
  uint32_t genTypedJump(Type Ty, bool WhenTrue);

  /// Records that a function body may write global storage. Each Vm runs
  /// over a private copy of the global arena, so a unit with writable
  /// globals is not safe to shard across campaign threads; SourceProgram
  /// reads CompiledUnit::WritesGlobals and clears ThreadSafeBody.
  ///
  /// Soundness: every global-space pointer originates at an AddrG
  /// emission. Those happen in exactly three places — a direct fused
  /// store (genVarStore, flagged), an array-decay/address-of in a general
  /// rvalue position (flagged as an escape: the address may be stored
  /// through later, here or in a callee), and the direct base of an
  /// indexed access (suppressed for reads, flagged for stores) — so
  /// read-only global use, the whole Fdlibm suite included, stays
  /// unflagged while every potential write path is covered.
  void noteGlobalEscape(const VarDecl &D) {
    if (D.Storage == StorageKind::Global)
      U.WritesGlobals = true;
  }

  bool genExpr(const Expr &E);
  bool genExprForEffect(const Expr &E);
  bool genLvalueAddr(const Expr &E, bool ForStore);
  bool genBinary(const BinaryExpr &B);
  bool genNumericOp(BinaryOp Op, Type C);
  bool genIncDec(const Expr &Lvalue, bool IsPre, bool IsInc, unsigned Line);
  bool genAssign(const AssignExpr &A, bool NeedValue);
  bool genCall(const CallExpr &Call);

  /// Compiles a statement condition (site or plain) and emits one jump,
  /// taken when the outcome equals \p JumpWhenTrue. Returns false on
  /// error; \p Patch receives the jump's index.
  bool genCondJump(const Expr &Cond, uint32_t Site, bool JumpWhenTrue,
                   uint32_t &Patch);

  bool genVarInit(const VarDecl &D, bool Global);
  bool genStmt(const Stmt &S);
  bool genFunction(const FunctionDecl &F, FunctionInfo &Info);
};

bool Compiler::genConvert(Type From, Type To) {
  if (To == From)
    return true;
  if (To.isPointer()) {
    if (From.isPointer() || From.isVoid())
      return true; // retype only; the encoded bits carry over
    if (From.isInteger()) {
      emit(Op::I2P);
      return true;
    }
    emit(Op::TrapOp, trapMsg("invalid conversion to pointer type"));
    return true;
  }
  switch (To.Base) {
  case BaseType::Double:
    switch (tc(From)) {
    case TC::D:
      return true;
    case TC::I:
      emit(Op::I2D);
      return true;
    case TC::U:
      emit(Op::U2D);
      return true;
    case TC::P:
    case TC::V:
      emit(Op::TrapOp, trapMsg("pointer used as a number"));
      return true;
    }
    break;
  case BaseType::Int:
    switch (tc(From)) {
    case TC::I:
      return true;
    case TC::D:
      emit(Op::D2I);
      return true;
    case TC::U:
      emit(Op::U2I);
      return true;
    case TC::P:
    case TC::V:
      emit(Op::TrapOp, trapMsg("pointer used as an integer"));
      return true;
    }
    break;
  case BaseType::UInt:
    switch (tc(From)) {
    case TC::U:
      return true;
    case TC::D:
      emit(Op::D2U);
      return true;
    case TC::I:
      emit(Op::I2U);
      return true;
    case TC::P:
    case TC::V:
      emit(Op::TrapOp, trapMsg("pointer used as an integer"));
      return true;
    }
    break;
  case BaseType::Void:
    return true; // value discarded by the caller
  }
  return fail("unsupported conversion");
}

bool Compiler::genLoad(Type Ty) {
  switch (tc(Ty)) {
  case TC::I:
    emit(Op::LoadI);
    return true;
  case TC::U:
    emit(Op::LoadU);
    return true;
  case TC::D:
    emit(Op::LoadD);
    return true;
  case TC::P:
    emit(Op::LoadP);
    return true;
  case TC::V:
    emit(Op::TrapOp, trapMsg("load of unsupported type"));
    return true;
  }
  return fail("unsupported load type");
}

bool Compiler::genStore(Type Ty, bool Keep) {
  int Delta = Keep ? -1 : -2;
  switch (tc(Ty)) {
  case TC::I:
    emit(Op::StoreI, 0, Keep, Delta);
    return true;
  case TC::U:
    emit(Op::StoreU, 0, Keep, Delta);
    return true;
  case TC::D:
    emit(Op::StoreD, 0, Keep, Delta);
    return true;
  case TC::P:
    emit(Op::StoreP, 0, Keep, Delta);
    return true;
  case TC::V:
    emit(Op::TrapOp, trapMsg("store of unsupported type"), 0, Delta);
    return true;
  }
  return fail("unsupported store type");
}

bool Compiler::genVarLoad(const VarDecl &D) {
  bool Global = D.Storage == StorageKind::Global;
  switch (tc(D.DeclType)) {
  case TC::I:
    emit(Global ? Op::LdGI : Op::LdFI, D.ByteOffset, 0, +1);
    return true;
  case TC::U:
    emit(Global ? Op::LdGU : Op::LdFU, D.ByteOffset, 0, +1);
    return true;
  case TC::D:
    emit(Global ? Op::LdGD : Op::LdFD, D.ByteOffset, 0, +1);
    return true;
  case TC::P:
    emit(Global ? Op::LdGP : Op::LdFP, D.ByteOffset, 0, +1);
    return true;
  case TC::V:
    break;
  }
  return fail("load of a void variable");
}

bool Compiler::genVarStore(const VarDecl &D, bool Keep) {
  bool Global = D.Storage == StorageKind::Global;
  if (Global)
    U.WritesGlobals = true; // direct global write in a function body
  int Delta = Keep ? 0 : -1;
  switch (tc(D.DeclType)) {
  case TC::I:
    emit(Global ? Op::StGI : Op::StFI, D.ByteOffset, Keep, Delta);
    return true;
  case TC::U:
    emit(Global ? Op::StGU : Op::StFU, D.ByteOffset, Keep, Delta);
    return true;
  case TC::D:
    emit(Global ? Op::StGD : Op::StFD, D.ByteOffset, Keep, Delta);
    return true;
  case TC::P:
    emit(Global ? Op::StGP : Op::StFP, D.ByteOffset, Keep, Delta);
    return true;
  case TC::V:
    break;
  }
  return fail("store to a void variable");
}

void Compiler::genBool(Type Ty) {
  switch (tc(Ty)) {
  case TC::I:
  case TC::U:
    emit(Op::BoolI);
    return;
  case TC::D:
    emit(Op::BoolD);
    return;
  case TC::P:
    emit(Op::BoolP);
    return;
  case TC::V:
    // A void value is never truthy (Interp reads its zeroed I field).
    emit(Op::ConstI, 0, 0, +1);
    return;
  }
}

uint32_t Compiler::genTypedJump(Type Ty, bool WhenTrue) {
  switch (tc(Ty)) {
  case TC::I:
  case TC::U:
    return emit(WhenTrue ? Op::JtI : Op::JfI, 0, 0, -1);
  case TC::D:
    return emit(WhenTrue ? Op::JtD : Op::JfD, 0, 0, -1);
  case TC::P:
    return emit(WhenTrue ? Op::JtP : Op::JfP, 0, 0, -1);
  case TC::V:
    emit(Op::ConstI, 0, 0, +1); // void is falsy
    return emit(WhenTrue ? Op::JtI : Op::JfI, 0, 0, -1);
  }
  assert(false && "unknown type class");
  return emit(Op::JfI, 0, 0, -1);
}

bool Compiler::genLvalueAddr(const Expr &E, bool ForStore) {
  switch (E.Kind) {
  case ExprKind::VarRef: {
    // Reached via AddrOf only (direct variable stores use the fused
    // path): the address escapes, so a global target may be written
    // through it anywhere downstream.
    const auto &Ref = exprCast<VarRefExpr>(E);
    assert(Ref.Decl && "unresolved variable reference");
    genVarAddr(*Ref.Decl);
    noteGlobalEscape(*Ref.Decl);
    return true;
  }
  case ExprKind::Unary: {
    const auto &Un = exprCast<UnaryExpr>(E);
    assert(Un.Op == UnaryOp::Deref && "not an lvalue unary");
    // A store through an arbitrary pointer needs no flag of its own:
    // if the pointer can reach global space, the AddrG that created it
    // already flagged the escape.
    return genExpr(*Un.Operand); // leaves the pointer
  }
  case ExprKind::Index: {
    const auto &Idx = exprCast<IndexExpr>(E);
    const Expr &Base = *Idx.Base;
    if (Base.Kind == ExprKind::VarRef &&
        exprCast<VarRefExpr>(Base).Decl->isArray()) {
      // Direct indexed access to a named array: the address is consumed
      // immediately, so a *read* of a global table (rint's TWO52[sx])
      // does not count as an escape; a *store* is a global write.
      const VarDecl &D = *exprCast<VarRefExpr>(Base).Decl;
      genVarAddr(D);
      if (ForStore)
        noteGlobalEscape(D);
    } else if (!genExpr(Base)) { // nested decay flags its own escape
      return false;
    }
    if (!genExpr(*Idx.Index))
      return false;
    if (!genConvert(Idx.Index->Ty, Type(BaseType::Int)))
      return false;
    unsigned Elem = Idx.Base->Ty.pointee().sizeInBytes();
    emit(Op::PtrAdd, Elem, 0, -1);
    return true;
  }
  default:
    return fail("expression is not an lvalue");
  }
}

/// Arithmetic / remainder over the already-converted common type \p C,
/// with both operands on the stack ([L, R], R on top).
bool Compiler::genNumericOp(BinaryOp Op2, Type C) {
  TC Cls = tc(C);
  switch (Op2) {
  case BinaryOp::Add:
    emit(Cls == TC::D ? Op::AddD : Cls == TC::U ? Op::AddU : Op::AddI, 0, 0,
         -1);
    return true;
  case BinaryOp::Sub:
    emit(Cls == TC::D ? Op::SubD : Cls == TC::U ? Op::SubU : Op::SubI, 0, 0,
         -1);
    return true;
  case BinaryOp::Mul:
    emit(Cls == TC::D ? Op::MulD : Cls == TC::U ? Op::MulU : Op::MulI, 0, 0,
         -1);
    return true;
  case BinaryOp::Div:
    emit(Cls == TC::D ? Op::DivD : Cls == TC::U ? Op::DivU : Op::DivI, 0, 0,
         -1);
    return true;
  case BinaryOp::Rem:
    emit(Cls == TC::U ? Op::RemU : Op::RemI, 0, 0, -1);
    return true;
  default:
    return fail("genNumericOp on a non-arithmetic operator");
  }
}

bool Compiler::genBinary(const BinaryExpr &B) {
  Type Lt = B.Lhs->Ty, Rt = B.Rhs->Ty;

  // Sequencing operators control operand evaluation themselves.
  if (B.Op == BinaryOp::LogAnd || B.Op == BinaryOp::LogOr) {
    if (!genExpr(*B.Lhs))
      return false;
    bool IsAnd = B.Op == BinaryOp::LogAnd;
    uint32_t Short = genTypedJump(Lt, /*WhenTrue=*/!IsAnd);
    int Base = CurDepth;
    if (!genExpr(*B.Rhs))
      return false;
    genBool(Rt);
    uint32_t End = emit(Op::Jump);
    patch(Short);
    CurDepth = Base;
    emit(Op::ConstI, IsAnd ? 0u : 1u, 0, +1);
    patch(End);
    return true;
  }
  if (B.Op == BinaryOp::Comma) {
    if (!genExpr(*B.Lhs))
      return false;
    if (!Lt.isVoid())
      emit(Op::Pop, 0, 0, -1);
    return genExpr(*B.Rhs);
  }

  if (isComparisonOp(B.Op)) {
    // Null-pointer-constant comparison (==/!= only, per Sema): the
    // integer side is evaluated and discarded, only nullness matters.
    if (Lt.isPointer() != Rt.isPointer()) {
      if (!genExpr(*B.Lhs) || !genExpr(*B.Rhs))
        return false;
      if (Lt.isPointer()) {
        emit(Op::Pop, 0, 0, -1); // drop the integer on top
      } else {
        emit(Op::Swap);
        emit(Op::Pop, 0, 0, -1);
      }
      emit(Op::PNullCmp, B.Op == BinaryOp::EQ ? 1u : 0u);
      return true;
    }
    uint32_t Cmp = static_cast<uint32_t>(toCmpOp(B.Op));
    if (Lt.isPointer() && Rt.isPointer()) {
      if (!genExpr(*B.Lhs) || !genExpr(*B.Rhs))
        return false;
      emit(Op::CmpP, Cmp, 0, -1);
      return true;
    }
    Type C = usualArithmetic(Lt, Rt);
    if (!genExpr(*B.Lhs) || !genConvert(Lt, C))
      return false;
    if (!genExpr(*B.Rhs) || !genConvert(Rt, C))
      return false;
    emit(tc(C) == TC::D ? Op::CmpD : tc(C) == TC::U ? Op::CmpU : Op::CmpI,
         Cmp, 0, -1);
    return true;
  }

  // Pointer arithmetic: ptr +- int and int + ptr.
  if ((B.Op == BinaryOp::Add || B.Op == BinaryOp::Sub) &&
      (Lt.isPointer() || Rt.isPointer())) {
    if (Lt.isPointer()) {
      if (!genExpr(*B.Lhs) || !genExpr(*B.Rhs))
        return false;
      if (!genConvert(Rt, Type(BaseType::Int)))
        return false;
      emit(Op::PtrAdd, Lt.pointee().sizeInBytes(),
           B.Op == BinaryOp::Sub ? 1u : 0u, -1);
    } else { // int + ptr (Sema rejects int - ptr)
      if (!genExpr(*B.Lhs) || !genConvert(Lt, Type(BaseType::Int)))
        return false;
      if (!genExpr(*B.Rhs))
        return false;
      emit(Op::Swap);
      emit(Op::PtrAdd, Rt.pointee().sizeInBytes(), 0, -1);
    }
    return true;
  }

  switch (B.Op) {
  case BinaryOp::Add:
  case BinaryOp::Sub:
  case BinaryOp::Mul:
  case BinaryOp::Div:
  case BinaryOp::Rem: {
    Type C = usualArithmetic(Lt, Rt);
    if (!genExpr(*B.Lhs) || !genConvert(Lt, C))
      return false;
    if (!genExpr(*B.Rhs) || !genConvert(Rt, C))
      return false;
    return genNumericOp(B.Op, C);
  }

  case BinaryOp::Shl:
  case BinaryOp::Shr: {
    if (!genExpr(*B.Lhs)) // shifts keep the left operand's type
      return false;
    if (!genExpr(*B.Rhs) || !genConvert(Rt, Type(BaseType::UInt)))
      return false;
    bool UnsignedL = Lt.Base == BaseType::UInt;
    emit(B.Op == BinaryOp::Shl ? (UnsignedL ? Op::ShlU : Op::ShlI)
                               : (UnsignedL ? Op::ShrU : Op::ShrI),
         0, 0, -1);
    return true;
  }

  case BinaryOp::BitAnd:
  case BinaryOp::BitOr:
  case BinaryOp::BitXor: {
    // Canonical slots carry exact low-32 bits for both integer types, so
    // the bit operation needs no pre-conversion; re-canonicalize as int
    // when the usual-arithmetic result type is int.
    if (!genExpr(*B.Lhs) || !genExpr(*B.Rhs))
      return false;
    emit(B.Op == BinaryOp::BitAnd  ? Op::And32
         : B.Op == BinaryOp::BitOr ? Op::Or32
                                   : Op::Xor32,
         0, 0, -1);
    if (usualArithmetic(Lt, Rt).Base == BaseType::Int)
      emit(Op::U2I);
    return true;
  }

  default:
    break;
  }
  return fail("unsupported binary operator");
}

/// Pre/postfix increment and decrement over any lvalue shape.
bool Compiler::genIncDec(const Expr &Lvalue, bool IsPre, bool IsInc,
                         unsigned Line) {
  (void)Line;
  Type Ty = Lvalue.Ty;
  auto GenStep = [&]() -> bool {
    switch (tc(Ty)) {
    case TC::D:
      emit(Op::ConstD, dconst(1.0), 0, +1);
      emit(IsInc ? Op::AddD : Op::SubD, 0, 0, -1);
      return true;
    case TC::U:
      // The interpreter's `one` is int 1; uint OP int runs as uint.
      emit(Op::ConstU, 1, 0, +1);
      emit(IsInc ? Op::AddU : Op::SubU, 0, 0, -1);
      return true;
    case TC::I:
      emit(Op::ConstI, 1, 0, +1);
      emit(IsInc ? Op::AddI : Op::SubI, 0, 0, -1);
      return true;
    case TC::P:
      emit(Op::ConstI, 1, 0, +1);
      emit(Op::PtrAdd, Ty.pointee().sizeInBytes(), IsInc ? 0u : 1u, -1);
      return true;
    case TC::V:
      return fail("increment of a void value");
    }
    return false;
  };

  if (Lvalue.Kind == ExprKind::VarRef) {
    const VarDecl &D = *exprCast<VarRefExpr>(Lvalue).Decl;
    if (!genVarLoad(D))
      return false;
    if (IsPre) {
      if (!GenStep())
        return false;
      return genVarStore(D, /*Keep=*/true);
    }
    emit(Op::Dup, 0, 0, +1);
    if (!GenStep())
      return false;
    return genVarStore(D, /*Keep=*/false); // the old value stays on top
  }

  if (!genLvalueAddr(Lvalue, /*ForStore=*/true))
    return false;
  emit(Op::Dup, 0, 0, +1);
  if (!genLoad(Ty))
    return false;
  if (IsPre) {
    if (!GenStep())
      return false;
    return genStore(Ty, /*Keep=*/true);
  }
  emit(Op::Dup, 0, 0, +1);
  if (!GenStep())
    return false;
  emit(Op::Rot);  // [addr old new] -> [old new addr]
  emit(Op::Swap); // -> [old addr new]
  return genStore(Ty, /*Keep=*/false);
}

bool Compiler::genAssign(const AssignExpr &A, bool NeedValue) {
  Type Ty = A.Lhs->Ty;
  Type Rt = A.Rhs->Ty;
  bool Fused = A.Lhs->Kind == ExprKind::VarRef;
  const VarDecl *D =
      Fused ? exprCast<VarRefExpr>(*A.Lhs).Decl : nullptr;

  if (A.Op == AssignOp::Assign) {
    if (!Fused && !genLvalueAddr(*A.Lhs, /*ForStore=*/true))
      return false;
    if (!genExpr(*A.Rhs) || !genConvert(Rt, Ty))
      return false;
    return Fused ? genVarStore(*D, NeedValue) : genStore(Ty, NeedValue);
  }

  BinaryOp Op2 = BinaryOp::Add; // always overwritten; placates
                                // -Wmaybe-uninitialized
  switch (A.Op) {
  case AssignOp::Add:
    Op2 = BinaryOp::Add;
    break;
  case AssignOp::Sub:
    Op2 = BinaryOp::Sub;
    break;
  case AssignOp::Mul:
    Op2 = BinaryOp::Mul;
    break;
  case AssignOp::Div:
    Op2 = BinaryOp::Div;
    break;
  case AssignOp::Rem:
    Op2 = BinaryOp::Rem;
    break;
  case AssignOp::Shl:
    Op2 = BinaryOp::Shl;
    break;
  case AssignOp::Shr:
    Op2 = BinaryOp::Shr;
    break;
  case AssignOp::And:
    Op2 = BinaryOp::BitAnd;
    break;
  case AssignOp::Or:
    Op2 = BinaryOp::BitOr;
    break;
  case AssignOp::Xor:
    Op2 = BinaryOp::BitXor;
    break;
  case AssignOp::Assign:
    return fail("plain assignment reached compound lowering");
  }

  // Evaluation order mirrors the interpreter exactly: lvalue address,
  // then the RHS, then the old value — so `g += f()` sees f's write to g.
  bool Shift = Op2 == BinaryOp::Shl || Op2 == BinaryOp::Shr;
  bool Bitwise = Op2 == BinaryOp::BitAnd || Op2 == BinaryOp::BitOr ||
                 Op2 == BinaryOp::BitXor;

  if (!Fused) {
    if (!genLvalueAddr(*A.Lhs, /*ForStore=*/true))
      return false;
    emit(Op::Dup, 0, 0, +1); // [a a]
  }
  if (!genExpr(*A.Rhs)) // [.. rhs]
    return false;
  if (Shift && !genConvert(Rt, Type(BaseType::UInt)))
    return false;
  if (!Fused) {
    emit(Op::Swap); // [a rhs a]
    if (!genLoad(Ty))
      return false; // [a rhs old]
  } else {
    if (!genVarLoad(*D)) // [rhs old]
      return false;
  }

  if (Shift) {
    emit(Op::Swap); // [.. old rhsU]
    bool UnsignedL = Ty.Base == BaseType::UInt;
    emit(Op2 == BinaryOp::Shl ? (UnsignedL ? Op::ShlU : Op::ShlI)
                              : (UnsignedL ? Op::ShrU : Op::ShrI),
         0, 0, -1);
    // Shifts keep the lvalue's type: no re-conversion needed.
  } else if (Bitwise) {
    // Commutative over raw bits; [rhs old] needs no swap.
    emit(Op2 == BinaryOp::BitAnd  ? Op::And32
         : Op2 == BinaryOp::BitOr ? Op::Or32
                                  : Op::Xor32,
         0, 0, -1);
    Type C = usualArithmetic(Ty, Rt);
    if (C.Base == BaseType::Int)
      emit(Op::U2I);
    if (!genConvert(C, Ty))
      return false;
  } else {
    Type C = usualArithmetic(Ty, Rt);
    if (!genConvert(Ty, C)) // the old value is on top
      return false;
    emit(Op::Swap); // [.. oldC rhs]
    if (!genConvert(Rt, C))
      return false;
    if (!genNumericOp(Op2, C))
      return false;
    if (!genConvert(C, Ty))
      return false;
  }
  return Fused ? genVarStore(*D, NeedValue) : genStore(Ty, NeedValue);
}

bool Compiler::genCall(const CallExpr &Call) {
  if (!Call.Callee) {
    const BuiltinEntry *B = findBuiltin(Call.Name);
    if (!B)
      return fail("call to unknown builtin '" + Call.Name + "'");
    for (size_t I = 0; I < Call.Args.size(); ++I) {
      if (!genExpr(*Call.Args[I]))
        return false;
      Type To = (B->Id == BuiltinId::Scalbn && I == 1)
                    ? Type(BaseType::Int)
                    : Type(BaseType::Double);
      if (!genConvert(Call.Args[I]->Ty, To))
        return false;
    }
    emit(Op::CallB, static_cast<uint32_t>(B->Id), B->Arity,
         1 - static_cast<int>(B->Arity));
    return true;
  }

  auto It = FnIndex.find(Call.Callee);
  if (It == FnIndex.end())
    return fail("call to unknown function '" + Call.Name + "'");
  const FunctionDecl &F = *Call.Callee;
  for (size_t I = 0; I < Call.Args.size(); ++I) {
    if (!genExpr(*Call.Args[I]))
      return false;
    if (!genConvert(Call.Args[I]->Ty, F.Params[I]->DeclType))
      return false;
  }
  int Pushed = F.ReturnType.isVoid() ? 0 : 1;
  emit(Op::Call, It->second, 0,
       Pushed - static_cast<int>(Call.Args.size()));
  return true;
}

bool Compiler::genExpr(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::IntLiteral: {
    const auto &Lit = exprCast<IntLiteralExpr>(E);
    emit(Lit.IsUnsigned ? Op::ConstU : Op::ConstI,
         static_cast<uint32_t>(Lit.Value), 0, +1);
    return true;
  }
  case ExprKind::DoubleLiteral:
    emit(Op::ConstD, dconst(exprCast<DoubleLiteralExpr>(E).Value), 0, +1);
    return true;

  case ExprKind::VarRef: {
    const auto &Ref = exprCast<VarRefExpr>(E);
    assert(Ref.Decl && "unresolved variable reference");
    if (Ref.Decl->isArray()) { // arrays decay to &elem[0]
      genVarAddr(*Ref.Decl);
      noteGlobalEscape(*Ref.Decl); // the decayed address may be stored through
      return true;
    }
    return genVarLoad(*Ref.Decl);
  }

  case ExprKind::Unary: {
    const auto &Un = exprCast<UnaryExpr>(E);
    switch (Un.Op) {
    case UnaryOp::Neg: {
      if (!genExpr(*Un.Operand))
        return false;
      switch (tc(Un.Operand->Ty)) {
      case TC::D:
        emit(Op::NegD);
        return true;
      case TC::U:
        emit(Op::NegU);
        return true;
      default:
        emit(Op::NegI);
        return true;
      }
    }
    case UnaryOp::LogNot: {
      if (!genExpr(*Un.Operand))
        return false;
      switch (tc(Un.Operand->Ty)) {
      case TC::D:
        emit(Op::LogNotD);
        return true;
      case TC::P:
        emit(Op::LogNotP);
        return true;
      case TC::V:
        emit(Op::ConstI, 1, 0, +1); // !void is true (void is falsy)
        return true;
      default:
        emit(Op::LogNotI);
        return true;
      }
    }
    case UnaryOp::BitNot:
      if (!genExpr(*Un.Operand))
        return false;
      emit(Un.Operand->Ty.Base == BaseType::UInt ? Op::NotU : Op::NotI);
      return true;
    case UnaryOp::Deref:
      if (!genExpr(*Un.Operand))
        return false;
      return genLoad(E.Ty);
    case UnaryOp::AddrOf:
      // The address escapes; a global target may be written through it.
      return genLvalueAddr(*Un.Operand, /*ForStore=*/true);
    case UnaryOp::PreInc:
    case UnaryOp::PreDec:
      return genIncDec(*Un.Operand, /*IsPre=*/true,
                       Un.Op == UnaryOp::PreInc, E.Line);
    }
    return fail("unsupported unary operator");
  }

  case ExprKind::Postfix: {
    const auto &P = exprCast<PostfixExpr>(E);
    return genIncDec(*P.Operand, /*IsPre=*/false, P.IsIncrement, E.Line);
  }

  case ExprKind::Cast: {
    const auto &C = exprCast<CastExpr>(E);
    if (!genExpr(*C.Operand))
      return false;
    // `(int *)&x` style casts retype without touching the encoded bits.
    if (C.Target.isPointer() && C.Operand->Ty.isPointer())
      return true;
    if (C.Target.isVoid()) {
      if (!C.Operand->Ty.isVoid())
        emit(Op::Pop, 0, 0, -1);
      return true;
    }
    return genConvert(C.Operand->Ty, C.Target);
  }

  case ExprKind::Binary:
    return genBinary(exprCast<BinaryExpr>(E));

  case ExprKind::Ternary: {
    const auto &T = exprCast<TernaryExpr>(E);
    if (!genExpr(*T.Cond))
      return false;
    uint32_t Else = genTypedJump(T.Cond->Ty, /*WhenTrue=*/false);
    int Base = CurDepth;
    if (!genExpr(*T.TrueExpr))
      return false;
    if (E.Ty.isArithmetic() && !genConvert(T.TrueExpr->Ty, E.Ty))
      return false;
    uint32_t End = emit(Op::Jump);
    patch(Else);
    CurDepth = Base;
    if (!genExpr(*T.FalseExpr))
      return false;
    if (E.Ty.isArithmetic() && !genConvert(T.FalseExpr->Ty, E.Ty))
      return false;
    patch(End);
    return true;
  }

  case ExprKind::Assign:
    return genAssign(exprCast<AssignExpr>(E), /*NeedValue=*/true);

  case ExprKind::Call:
    return genCall(exprCast<CallExpr>(E));

  case ExprKind::Index:
    if (!genLvalueAddr(E, /*ForStore=*/false))
      return false;
    return genLoad(E.Ty);
  }
  return fail("unsupported expression kind");
}

bool Compiler::genExprForEffect(const Expr &E) {
  if (E.Kind == ExprKind::Assign)
    return genAssign(exprCast<AssignExpr>(E), /*NeedValue=*/false);
  if (!genExpr(E))
    return false;
  if (!E.Ty.isVoid())
    emit(Op::Pop, 0, 0, -1);
  return true;
}

bool Compiler::genCondJump(const Expr &Cond, uint32_t Site, bool JumpWhenTrue,
                           uint32_t &Patch) {
  if (Site != kNoSite) {
    // The instrumented shape (Def. 3.1(b)): exactly `a op b`. Operands are
    // promoted to double AFTER the usual arithmetic conversions, exactly
    // like Interpreter::evalCondition (see the floor/ceil carry-test note
    // there), then CondSite routes through rt::cond.
    const auto &B = exprCast<BinaryExpr>(Cond);
    Type Lt = B.Lhs->Ty, Rt = B.Rhs->Ty;
    bool AnyDouble = Lt.Base == BaseType::Double || Rt.Base == BaseType::Double;
    bool AnyUnsigned = Lt.Base == BaseType::UInt || Rt.Base == BaseType::UInt;
    auto Promote = [&](Type T) -> bool {
      if (AnyDouble)
        return genConvert(T, Type(BaseType::Double));
      if (AnyUnsigned) {
        if (!genConvert(T, Type(BaseType::UInt)))
          return false;
        emit(Op::U2D);
        return true;
      }
      if (!genConvert(T, Type(BaseType::Int)))
        return false;
      emit(Op::I2D);
      return true;
    };
    if (!genExpr(*B.Lhs) || !Promote(Lt))
      return false;
    if (!genExpr(*B.Rhs) || !Promote(Rt))
      return false;
    emit(Op::CondSite, Site, static_cast<uint32_t>(toCmpOp(B.Op)), -1);
    Patch = emit(JumpWhenTrue ? Op::JtI : Op::JfI, 0, 0, -1);
    return true;
  }
  if (!genExpr(Cond))
    return false;
  Patch = genTypedJump(Cond.Ty, JumpWhenTrue);
  return true;
}

bool Compiler::genVarInit(const VarDecl &D, bool Global) {
  auto StoreAt = [&](uint32_t Offset) -> bool {
    int Delta = -1;
    switch (tc(D.DeclType)) {
    case TC::I:
      emit(Global ? Op::StGI : Op::StFI, Offset, 0, Delta);
      return true;
    case TC::U:
      emit(Global ? Op::StGU : Op::StFU, Offset, 0, Delta);
      return true;
    case TC::D:
      emit(Global ? Op::StGD : Op::StFD, Offset, 0, Delta);
      return true;
    case TC::P:
      emit(Global ? Op::StGP : Op::StFP, Offset, 0, Delta);
      return true;
    case TC::V:
      break;
    }
    return fail("initializer for a void variable");
  };

  if (D.isArray()) {
    emit(Global ? Op::ZeroG : Op::ZeroF, D.ByteOffset, D.storageBytes());
    for (size_t I = 0; I < D.InitList.size(); ++I) {
      if (!genExpr(*D.InitList[I]) ||
          !genConvert(D.InitList[I]->Ty, D.DeclType))
        return false;
      if (!StoreAt(D.ByteOffset +
                   static_cast<uint32_t>(I * D.DeclType.sizeInBytes())))
        return false;
    }
    return true;
  }

  if (D.Init) {
    if (!genExpr(*D.Init) || !genConvert(D.Init->Ty, D.DeclType))
      return false;
  } else {
    // Default initialization: the interpreter converts int 0.
    switch (tc(D.DeclType)) {
    case TC::D:
      emit(Op::ConstD, dconst(0.0), 0, +1);
      break;
    case TC::U:
      emit(Op::ConstU, 0, 0, +1);
      break;
    case TC::P:
      emit(Op::ConstU, 0, 0, +1); // the null pointer encodes as 0
      break;
    default:
      emit(Op::ConstI, 0, 0, +1);
      break;
    }
  }
  return StoreAt(D.ByteOffset);
}

bool Compiler::genStmt(const Stmt &S) {
  switch (S.Kind) {
  case StmtKind::Expr:
    return genExprForEffect(*stmtCast<ExprStmt>(S).E);

  case StmtKind::Decl:
    for (const auto &D : stmtCast<DeclStmt>(S).Decls)
      if (!genVarInit(*D, /*Global=*/false))
        return false;
    return true;

  case StmtKind::Block:
    for (const auto &Child : stmtCast<BlockStmt>(S).Body)
      if (!genStmt(*Child))
        return false;
    return true;

  case StmtKind::If: {
    const auto &If = stmtCast<IfStmt>(S);
    uint32_t ElseJump;
    if (!genCondJump(*If.Cond, If.Site, /*JumpWhenTrue=*/false, ElseJump))
      return false;
    if (!genStmt(*If.Then))
      return false;
    if (If.Else) {
      uint32_t EndJump = emit(Op::Jump);
      patch(ElseJump);
      if (!genStmt(*If.Else))
        return false;
      patch(EndJump);
    } else {
      patch(ElseJump);
    }
    return true;
  }

  case StmtKind::While: {
    const auto &W = stmtCast<WhileStmt>(S);
    uint32_t Head = here();
    uint32_t ExitJump;
    if (!genCondJump(*W.Cond, W.Site, /*JumpWhenTrue=*/false, ExitJump))
      return false;
    Loops.emplace_back();
    bool Ok = genStmt(*W.Body);
    LoopCtx Ctx = std::move(Loops.back());
    Loops.pop_back();
    if (!Ok)
      return false;
    emit(Op::Jump, Head);
    patch(ExitJump);
    for (uint32_t J : Ctx.Breaks)
      patch(J);
    for (uint32_t J : Ctx.Continues)
      patchTo(J, Head);
    return true;
  }

  case StmtKind::DoWhile: {
    const auto &D = stmtCast<DoWhileStmt>(S);
    uint32_t Head = here();
    Loops.emplace_back();
    bool Ok = genStmt(*D.Body);
    LoopCtx Ctx = std::move(Loops.back());
    Loops.pop_back();
    if (!Ok)
      return false;
    uint32_t CondStart = here();
    uint32_t BackJump;
    if (!genCondJump(*D.Cond, D.Site, /*JumpWhenTrue=*/true, BackJump))
      return false;
    patchTo(BackJump, Head);
    for (uint32_t J : Ctx.Breaks)
      patch(J);
    for (uint32_t J : Ctx.Continues)
      patchTo(J, CondStart);
    return true;
  }

  case StmtKind::For: {
    const auto &F = stmtCast<ForStmt>(S);
    if (F.Init && !genStmt(*F.Init))
      return false;
    uint32_t Head = here();
    uint32_t ExitJump = 0;
    bool HasCond = F.Cond != nullptr;
    if (HasCond &&
        !genCondJump(*F.Cond, F.Site, /*JumpWhenTrue=*/false, ExitJump))
      return false;
    Loops.emplace_back();
    bool Ok = genStmt(*F.Body);
    LoopCtx Ctx = std::move(Loops.back());
    Loops.pop_back();
    if (!Ok)
      return false;
    uint32_t StepStart = here();
    if (F.Step && !genExprForEffect(*F.Step))
      return false;
    emit(Op::Jump, Head);
    if (HasCond)
      patch(ExitJump);
    for (uint32_t J : Ctx.Breaks)
      patch(J);
    for (uint32_t J : Ctx.Continues)
      patchTo(J, StepStart);
    return true;
  }

  case StmtKind::Return: {
    const auto &R = stmtCast<ReturnStmt>(S);
    if (R.Value) {
      if (!genExpr(*R.Value) ||
          !genConvert(R.Value->Ty, CurFn->ReturnType))
        return false;
      emit(Op::Ret, 0, 0, -1);
    } else {
      emit(Op::RetV);
    }
    return true;
  }

  case StmtKind::Break: {
    uint32_t J = emit(Op::Jump);
    if (Loops.empty())
      EpiloguePatches.push_back(J); // unwind to the function end
    else
      Loops.back().Breaks.push_back(J);
    return true;
  }
  case StmtKind::Continue: {
    uint32_t J = emit(Op::Jump);
    if (Loops.empty())
      EpiloguePatches.push_back(J);
    else
      Loops.back().Continues.push_back(J);
    return true;
  }
  case StmtKind::Empty:
    return true;
  }
  return fail("unsupported statement kind");
}

bool Compiler::genFunction(const FunctionDecl &F, FunctionInfo &Info) {
  CurFn = &F;
  CurDepth = 0;
  MaxDepth = 0;
  Loops.clear();
  EpiloguePatches.clear();

  Info.Entry = here();
  if (!genStmt(*F.Body))
    return false;
  assert(CurDepth == 0 && "statements must leave the operand stack empty");

  // Fall-through epilogue: the interpreter converts a void return value to
  // the declared return type, which traps for arithmetic returns and
  // yields a null pointer for pointer returns.
  for (uint32_t J : EpiloguePatches)
    patch(J);
  if (F.ReturnType.isVoid()) {
    emit(Op::RetV);
  } else if (F.ReturnType.isPointer()) {
    emit(Op::ConstU, 0, 0, +1);
    emit(Op::Ret, 0, 0, -1);
  } else if (F.ReturnType.isDouble()) {
    emit(Op::TrapOp, trapMsg("pointer used as a number"));
  } else {
    emit(Op::TrapOp, trapMsg("pointer used as an integer"));
  }

  Info.MaxOperandDepth = static_cast<uint32_t>(MaxDepth);
  CurFn = nullptr;
  return true;
}

bool Compiler::run() {
  U.GlobalBytes = TU.GlobalBytes;
  U.NumSites = TU.NumSites;

  // Pre-register every function so calls resolve regardless of definition
  // order (Sema already bound Callee pointers).
  U.Functions.reserve(TU.Functions.size());
  for (size_t I = 0; I < TU.Functions.size(); ++I) {
    const FunctionDecl &F = *TU.Functions[I];
    FunctionInfo Info;
    Info.Name = F.Name;
    Info.ReturnType = F.ReturnType;
    Info.FrameBytes = F.FrameBytes;
    for (const auto &P : F.Params) {
      Info.ParamTypes.push_back(P->DeclType);
      Info.ParamOffsets.push_back(P->ByteOffset);
    }
    U.Functions.push_back(std::move(Info));
    FnIndex.emplace(&F, static_cast<uint32_t>(I));
  }

  for (size_t I = 0; I < TU.Functions.size(); ++I) {
    if (!genFunction(*TU.Functions[I], U.Functions[I]))
      return false;
    // Entry thunk: lets callEntry reuse the Call instruction's frame and
    // argument handling, stopping cleanly at the sentinel.
    U.Functions[I].Thunk = here();
    emit(Op::Call, static_cast<uint32_t>(I), 0, 0);
    emit(Op::Halt);
    CurDepth = 0;
  }

  // File-scope initializers run in declaration order against the zeroed
  // global arena, once, at compile time (see compileUnit).
  CurDepth = 0;
  MaxDepth = 0;
  U.GlobalInitEntry = here();
  for (const auto &G : TU.Globals)
    if (!genVarInit(*G, /*Global=*/true))
      return false;
  emit(Op::Halt);
  U.GlobalInitMaxDepth = static_cast<uint32_t>(MaxDepth);
  return Error.empty();
}

//===----------------------------------------------------------------------===//
// Peephole / superinstruction fusion
//===----------------------------------------------------------------------===//

// fusedArithD below indexes each fused family by (opcode - AddVariant);
// pin the Add, Sub, Mul, Div layout the X-macro promises.
#define COVERME_ASSERT_FAMILY(Base)                                            \
  static_assert(static_cast<uint8_t>(Op::Base##SubD) ==                        \
                        static_cast<uint8_t>(Op::Base##AddD) + 1 &&            \
                    static_cast<uint8_t>(Op::Base##MulD) ==                    \
                        static_cast<uint8_t>(Op::Base##AddD) + 2 &&            \
                    static_cast<uint8_t>(Op::Base##DivD) ==                    \
                        static_cast<uint8_t>(Op::Base##AddD) + 3,              \
                "fused " #Base " family must be laid out Add,Sub,Mul,Div")
COVERME_ASSERT_FAMILY(LdF2);
COVERME_ASSERT_FAMILY(LdF);
COVERME_ASSERT_FAMILY(LdG);
COVERME_ASSERT_FAMILY(Const);
#undef COVERME_ASSERT_FAMILY

/// Maps a double arithmetic opcode to its fused variant in a family laid
/// out Add, Sub, Mul, Div (the COVERME_VM_OPCODES ordering); returns false
/// when \p O is not one of the four.
bool fusedArithD(Op O, Op AddVariant, Op &Out) {
  switch (O) {
  case Op::AddD:
    Out = AddVariant;
    return true;
  case Op::SubD:
    Out = static_cast<Op>(static_cast<uint8_t>(AddVariant) + 1);
    return true;
  case Op::MulD:
    Out = static_cast<Op>(static_cast<uint8_t>(AddVariant) + 2);
    return true;
  case Op::DivD:
    Out = static_cast<Op>(static_cast<uint8_t>(AddVariant) + 3);
    return true;
  default:
    return false;
  }
}

/// The peephole pass: collapses the measured-hot straight-line sequences
/// into superinstructions. Fusion is purely a dispatch-count optimization:
/// each fused instruction performs the exact operation sequence it
/// replaces (CondSite fusion fires the same rt::cond hook with the same
/// operands before branching) and carries the replaced sequence's step
/// cost, so traces, traps, and budget exhaustion points are bit-identical
/// to the unfused stream.
///
/// A fusion window must not swallow a control-flow join: any instruction
/// that a jump, a call return, or a function/thunk entry can land on stays
/// an instruction head. Heads may *start* a window (the jumper then runs
/// the fused form of exactly the sequence it expected).
void fuseUnit(CompiledUnit &U) {
  const size_t N = U.Code.size();
  std::vector<uint8_t> Barrier(N + 1, 0);
  for (const Insn &In : U.Code) {
    switch (In.Code) {
    case Op::Jump:
    case Op::JfI:
    case Op::JfD:
    case Op::JfP:
    case Op::JtI:
    case Op::JtD:
    case Op::JtP:
      Barrier[In.A] = 1;
      break;
    default:
      break;
    }
  }
  for (size_t PC = 0; PC < N; ++PC)
    if (U.Code[PC].Code == Op::Call && PC + 1 < N)
      Barrier[PC + 1] = 1; // dynamic return address
  for (const FunctionInfo &F : U.Functions) {
    Barrier[F.Entry] = 1;
    Barrier[F.Thunk] = 1;
  }
  Barrier[U.GlobalInitEntry] = 1;

  constexpr uint32_t NoIndex = 0xffffffffu;
  std::vector<uint32_t> OldToNew(N + 1, NoIndex);
  std::vector<Insn> NewCode;
  NewCode.reserve(N);

  // Pool lookup for constants folded during fusion (ConstI;I2D becomes a
  // ConstD of the promoted value), deduplicating against the existing
  // slots by bit pattern exactly as Compiler::dconst does.
  std::map<uint64_t, uint32_t> PoolIndex;
  for (size_t I = 0; I < U.DoublePool.size(); ++I) {
    uint64_t Bits;
    __builtin_memcpy(&Bits, &U.DoublePool[I], sizeof(Bits));
    PoolIndex.emplace(Bits, static_cast<uint32_t>(I));
  }
  auto foldedConst = [&](double V) {
    uint64_t Bits;
    __builtin_memcpy(&Bits, &V, sizeof(Bits));
    auto It = PoolIndex.find(Bits);
    if (It != PoolIndex.end())
      return It->second;
    uint32_t Idx = static_cast<uint32_t>(U.DoublePool.size());
    U.DoublePool.push_back(V);
    PoolIndex.emplace(Bits, Idx);
    return Idx;
  };

  /// True when the window [PC+1, PC+Len) stays inside this straight line.
  auto windowFree = [&](size_t PC, size_t Len) {
    if (PC + Len > N)
      return false;
    for (size_t I = PC + 1; I < PC + Len; ++I)
      if (Barrier[I])
        return false;
    return true;
  };

  size_t PC = 0;
  while (PC < N) {
    OldToNew[PC] = static_cast<uint32_t>(NewCode.size());
    const Insn &In = U.Code[PC];
    Insn Fused{In.Code, 1, 0, 0};
    size_t Len = 0;

    if (In.Code == Op::LdFD && windowFree(PC, 3) &&
        U.Code[PC + 1].Code == Op::LdFD &&
        fusedArithD(U.Code[PC + 2].Code, Op::LdF2AddD, Fused.Code)) {
      Fused.A = In.A;
      Fused.B = U.Code[PC + 1].A;
      Len = 3;
    } else if (In.Code == Op::LdFD && windowFree(PC, 2) &&
               fusedArithD(U.Code[PC + 1].Code, Op::LdFAddD, Fused.Code)) {
      Fused.A = In.A;
      Len = 2;
    } else if (In.Code == Op::LdGD && windowFree(PC, 2) &&
               fusedArithD(U.Code[PC + 1].Code, Op::LdGAddD, Fused.Code)) {
      Fused.A = In.A;
      Len = 2;
    } else if (In.Code == Op::ConstD && windowFree(PC, 2) &&
               fusedArithD(U.Code[PC + 1].Code, Op::ConstAddD, Fused.Code)) {
      Fused.A = In.A;
      Len = 2;
    } else if (In.Code == Op::LdFI && windowFree(PC, 2) &&
               U.Code[PC + 1].Code == Op::I2D) {
      Fused.Code = Op::LdFI2D;
      Fused.A = In.A;
      Len = 2;
    } else if (In.Code == Op::LdFU && windowFree(PC, 2) &&
               U.Code[PC + 1].Code == Op::U2D) {
      Fused.Code = Op::LdFU2D;
      Fused.A = In.A;
      Len = 2;
    } else if (In.Code == Op::ConstI && windowFree(PC, 2) &&
               U.Code[PC + 1].Code == Op::I2D) {
      // Constant folding, not just pairing: the promoted value is known
      // at compile time (int32 -> double is exact), so the pair becomes a
      // pool load carrying both steps' cost.
      Fused.Code = Op::ConstD;
      Fused.A = foldedConst(static_cast<double>(static_cast<int32_t>(In.A)));
      Len = 2;
    } else if (In.Code == Op::ConstU && windowFree(PC, 2) &&
               U.Code[PC + 1].Code == Op::U2D) {
      Fused.Code = Op::ConstD;
      Fused.A = foldedConst(static_cast<double>(In.A));
      Len = 2;
    } else if (In.Code == Op::CondSite && windowFree(PC, 2) &&
               (U.Code[PC + 1].Code == Op::JfI ||
                U.Code[PC + 1].Code == Op::JtI) &&
               In.A < (1u << 29)) {
      Fused.Code =
          U.Code[PC + 1].Code == Op::JfI ? Op::CondSiteJf : Op::CondSiteJt;
      Fused.A = U.Code[PC + 1].A; // branch target (remapped below)
      Fused.B = (In.A << 3) | In.B;
      Len = 2;
    } else if (In.Code == Op::CmpD && windowFree(PC, 2) &&
               (U.Code[PC + 1].Code == Op::JfI ||
                U.Code[PC + 1].Code == Op::JtI)) {
      Fused.Code = U.Code[PC + 1].Code == Op::JfI ? Op::CmpDJf : Op::CmpDJt;
      Fused.A = U.Code[PC + 1].A;
      Fused.B = In.A; // CmpOp
      Len = 2;
    }

    if (Len == 0) {
      NewCode.push_back(In);
      ++PC;
      continue;
    }
    Fused.Cost = static_cast<uint8_t>(Len); // every replaced insn cost 1
    NewCode.push_back(Fused);
    ++U.Stats.Superinsns;
    PC += Len;
  }
  OldToNew[N] = static_cast<uint32_t>(NewCode.size());

  // Remap every control-transfer target; targets are barriers, and every
  // barrier stayed an instruction head.
  for (Insn &In : NewCode) {
    switch (In.Code) {
    case Op::Jump:
    case Op::JfI:
    case Op::JfD:
    case Op::JfP:
    case Op::JtI:
    case Op::JtD:
    case Op::JtP:
    case Op::CondSiteJf:
    case Op::CondSiteJt:
    case Op::CmpDJf:
    case Op::CmpDJt:
      assert(OldToNew[In.A] != NoIndex && "jump target fused away");
      In.A = OldToNew[In.A];
      break;
    default:
      break;
    }
  }
  for (FunctionInfo &F : U.Functions) {
    F.Entry = OldToNew[F.Entry];
    F.Thunk = OldToNew[F.Thunk];
  }
  U.GlobalInitEntry = OldToNew[U.GlobalInitEntry];
  U.Code = std::move(NewCode);
}

/// Builds CompiledUnit::BlockCost: for every PC, the summed step cost of
/// the straight-line run from PC through its terminating control transfer
/// (inclusive). Computed back to front; the stream always ends in a
/// terminator (the global-init Halt), so the recurrence is total.
void computeBlockCosts(CompiledUnit &U) {
  const size_t N = U.Code.size();
  U.BlockCost.assign(N, 0);
  for (size_t PC = N; PC-- > 0;) {
    uint32_t Cost = U.Code[PC].Cost;
    if (!isBlockTerminator(U.Code[PC].Code)) {
      assert(PC + 1 < N && "stream must end in a block terminator");
      Cost += U.BlockCost[PC + 1];
    }
    U.BlockCost[PC] = Cost;
  }
}

/// Marks FunctionInfo::WideSafe: whether the VM's SIMD wide batch lane
/// (lang/VmWide) may execute the function. The lane runs four probe rows
/// against one shared read-only copy of the global arena, so a function
/// is wide-unsafe iff a direct global write (StG*, ZeroG) is reachable
/// from its entry — transitively through calls. Stores through escaped
/// global *addresses* are not analyzed here: the VM additionally requires
/// the unit-level WritesGlobals bit to be clear, which covers them, and
/// the wide checked-store handler retires defensively anyway. Runs on the
/// final instruction stream (after fusion), so superinstruction opcodes
/// and remapped targets are what gets walked.
void analyzeWideSafety(CompiledUnit &U) {
  const size_t NumFns = U.Functions.size();
  std::vector<uint8_t> Unsafe(NumFns, 0);
  std::vector<std::vector<uint32_t>> Callees(NumFns);
  std::vector<uint8_t> Seen(U.Code.size());
  std::vector<uint32_t> Work;
  for (size_t FI = 0; FI < NumFns; ++FI) {
    std::fill(Seen.begin(), Seen.end(), 0);
    Work.assign(1, U.Functions[FI].Entry);
    while (!Work.empty() && !Unsafe[FI]) {
      uint32_t PC = Work.back();
      Work.pop_back();
      if (PC >= U.Code.size() || Seen[PC])
        continue;
      Seen[PC] = 1;
      const Insn &In = U.Code[PC];
      switch (In.Code) {
      case Op::StGI:
      case Op::StGU:
      case Op::StGD:
      case Op::StGP:
      case Op::ZeroG:
        Unsafe[FI] = 1;
        break;
      case Op::Call:
        Callees[FI].push_back(In.A);
        Work.push_back(PC + 1);
        break;
      case Op::Jump:
        Work.push_back(In.A);
        break;
      case Op::JfI:
      case Op::JfD:
      case Op::JfP:
      case Op::JtI:
      case Op::JtD:
      case Op::JtP:
      case Op::CondSiteJf:
      case Op::CondSiteJt:
      case Op::CmpDJf:
      case Op::CmpDJt:
        Work.push_back(In.A);
        Work.push_back(PC + 1);
        break;
      case Op::Ret:
      case Op::RetV:
      case Op::Halt:
      case Op::TrapOp:
        break;
      default:
        Work.push_back(PC + 1);
        break;
      }
    }
  }
  // Unsafety propagates caller-ward over the call graph to a fixpoint
  // (the graph is tiny; quadratic sweeps beat bookkeeping here).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t FI = 0; FI < NumFns; ++FI) {
      if (Unsafe[FI])
        continue;
      for (uint32_t Callee : Callees[FI]) {
        if (Callee < NumFns && Unsafe[Callee]) {
          Unsafe[FI] = 1;
          Changed = true;
          break;
        }
      }
    }
  }
  for (size_t FI = 0; FI < NumFns; ++FI) {
    U.Functions[FI].WideSafe = !Unsafe[FI];
    if (Unsafe[FI])
      ++U.Stats.WideUnsafeFunctions;
    else
      ++U.Stats.WideSafeFunctions;
  }
}

} // namespace

CompileResult bc::compileUnit(const TranslationUnit &TU,
                              const InterpOptions &GlobalInitOpts,
                              bool Fuse) {
  auto Unit = std::make_shared<CompiledUnit>();
  Compiler C(TU, *Unit);
  CompileResult Result;
  if (!C.run()) {
    Result.Error = C.Error.empty() ? "bytecode compilation failed" : C.Error;
    return Result;
  }

  Unit->Stats.FusionEnabled = Fuse;
  Unit->Stats.InsnsBeforeFusion = static_cast<uint32_t>(Unit->Code.size());
  if (Fuse)
    fuseUnit(*Unit);
  Unit->Stats.InsnsAfterFusion = static_cast<uint32_t>(Unit->Code.size());
  Unit->Stats.PoolSize = static_cast<uint32_t>(Unit->DoublePool.size());
  computeBlockCosts(*Unit);
  analyzeWideSafety(*Unit);

  // Bake the global image by running the init routine once on a scratch
  // Vm. The image is written before the unit is published anywhere else.
  std::shared_ptr<const CompiledUnit> View = Unit;
  Vm Init(View, GlobalInitOpts);
  if (!Init.runGlobalInit()) {
    Result.Error = "global initializer: " + Init.trapMessage();
    return Result;
  }
  Unit->GlobalImage = Init.globalMemory();
  Result.Unit = std::move(View);
  return Result;
}
