//===- SourceSuite.h - Fdlibm 5.3 sources for the interpreter pipeline ----===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ten benchmark functions from Fdlibm 5.3 embedded as C source text, for
/// testing through the full source pipeline (parse -> Sema -> interpret ->
/// Algorithm 1) exactly as the paper's tool consumes them (Sect. 5.1: "The
/// program under test can be in any LLVM-supported language... tested on C
/// code"). Where the native ports in src/fdlibm exercise the *compiled*
/// path, this suite exercises the *frontend* path on the same programs —
/// the two meet in differential tests.
///
/// The sources are Sun's, with two mechanical adaptations to the subset:
/// the __HI/__LO word-access macros are expanded to their little-endian
/// pointer-cast definitions (`*(1 + (int *)&x)` / `*(int *)&x`), and
/// ternary returns are written as if/else (the frontend instruments only
/// statement conditions, like the LLVM pass).
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_LANG_SOURCESUITE_H
#define COVERME_LANG_SOURCESUITE_H

#include "lang/SourceProgram.h"

#include <string>
#include <vector>

namespace coverme {
namespace lang {

/// One embedded benchmark source.
struct SourceBenchmark {
  std::string Name;       ///< Entry function, e.g. "tanh".
  std::string File;       ///< Originating Fdlibm file, e.g. "s_tanh.c".
  std::string NativePort; ///< Name of the matching src/fdlibm port.
  unsigned PaperLines;    ///< The paper's Table 5 "#Lines" figure.
  const char *Source;     ///< Full C source text.
};

/// The embedded suite, in a fixed order.
const std::vector<SourceBenchmark> &sourceSuite();

/// Looks up a benchmark by entry name; null if absent.
const SourceBenchmark *findSourceBenchmark(const std::string &Name);

/// Compiles \p B through the source pipeline. The returned program carries
/// the paper's line figure for the Table-5 line model.
SourceProgram compileSourceBenchmark(const SourceBenchmark &B);

} // namespace lang
} // namespace coverme

#endif // COVERME_LANG_SOURCESUITE_H
