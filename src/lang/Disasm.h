//===- Disasm.h - Bytecode disassembler -----------------------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a CompiledUnit back into a readable instruction listing, so
/// the streams the peephole pass produces — superinstructions, remapped
/// branch targets, per-instruction step costs — are inspectable:
/// `examples/source_campaign --disasm` prints it for any source program,
/// and the golden-disassembly tests pin the fusion pass's exact output on
/// representative SourceSuite subjects.
///
/// The rendering is deterministic (fixed formatting, %.17g for pool
/// constants) and complete: every instruction of every function plus the
/// entry thunks and the file-scope init routine, with operands decoded
/// per opcode (frame/global byte offsets, pool values, branch targets,
/// site ids with comparison spellings, builtin names) and a `cost N`
/// annotation wherever a superinstruction stands for N original steps.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_LANG_DISASM_H
#define COVERME_LANG_DISASM_H

#include "lang/Bytecode.h"

#include <string>

namespace coverme {
namespace lang {
namespace bc {

/// One instruction as text (mnemonic plus decoded operands), without the
/// address prefix. Exposed for tests asserting on specific encodings.
std::string renderInsn(const CompiledUnit &U, uint32_t PC);

/// The body of function \p FnIndex (its entry thunk included) as an
/// addressed listing, one instruction per line.
std::string disassembleFunction(const CompiledUnit &U, unsigned FnIndex);

/// The whole unit: a stats header (instruction/pool counts and what the
/// peephole pass did), every function, and the global-init routine.
std::string disassemble(const CompiledUnit &U);

} // namespace bc
} // namespace lang
} // namespace coverme

#endif // COVERME_LANG_DISASM_H
