//===- AstPrinter.h - Tree dumps and source re-rendering ------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two views of an analyzed tree, both primarily diagnostics:
///
/// * dumpAst — an indented structural dump (one node per line, types and
///   site ids included once Sema has run), the view golden tests pin;
/// * renderExpr / renderStmt — a minimal C re-rendering with explicit
///   parentheses, handy for error messages and for eyeballing what the
///   parser actually understood of an expression.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_LANG_ASTPRINTER_H
#define COVERME_LANG_ASTPRINTER_H

#include "lang/Ast.h"

#include <string>

namespace coverme {
namespace lang {

/// Spelling of a binary operator, e.g. "<<" or "<=".
const char *binaryOpSpelling(BinaryOp Op);

/// Spelling of a unary operator, e.g. "~".
const char *unaryOpSpelling(UnaryOp Op);

/// Spelling of an assignment operator, e.g. "+=".
const char *assignOpSpelling(AssignOp Op);

/// Renders \p E as C source with explicit parentheses around every
/// compound subexpression, so precedence is visible.
std::string renderExpr(const Expr &E);

/// Renders \p S as C source (multi-line for blocks), indented by
/// \p Indent levels of two spaces.
std::string renderStmt(const Stmt &S, unsigned Indent = 0);

/// Renders a whole translation unit as parseable C source: file-scope
/// declarations, then each function definition. The output is a fixed
/// point of print -> parse -> print (the AstPrinterTest round-trip
/// property), which is what pins printer/parser agreement for every
/// consumer that re-parses rendered source.
std::string renderUnit(const TranslationUnit &TU);

/// Structural dump of a whole translation unit: globals, functions,
/// statements and expressions one per line with kind, type (after Sema)
/// and conditional site ids.
std::string dumpAst(const TranslationUnit &TU);

} // namespace lang
} // namespace coverme

#endif // COVERME_LANG_ASTPRINTER_H
