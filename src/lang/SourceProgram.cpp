//===- SourceProgram.cpp - C source text as a testable Program ------------===//

#include "lang/SourceProgram.h"

#include "lang/Jit.h"
#include "lang/Sema.h"
#include "lang/Vm.h"

#include <algorithm>

using namespace coverme;
using namespace coverme::lang;

std::string SourceProgram::diagnosticsText() const {
  std::string Text;
  for (const Diagnostic &D : Diags) {
    if (!Text.empty())
      Text += '\n';
    Text += formatDiagnostic(D);
  }
  return Text;
}

namespace {

/// Counts the source lines a function's body statements span, as a stand-in
/// for the Table-5 "#Lines" figure when the caller does not provide one.
unsigned functionLineExtent(const FunctionDecl &F) {
  unsigned MaxLine = F.Line;
  // The deepest statement line is a good proxy for the closing brace.
  struct Walker {
    unsigned Max = 0;
    void visit(const Stmt &S) {
      Max = std::max(Max, S.Line);
      switch (S.Kind) {
      case StmtKind::Block:
        for (const auto &Child : stmtCast<BlockStmt>(S).Body)
          visit(*Child);
        break;
      case StmtKind::If: {
        const auto &If = stmtCast<IfStmt>(S);
        visit(*If.Then);
        if (If.Else)
          visit(*If.Else);
        break;
      }
      case StmtKind::While:
        visit(*stmtCast<WhileStmt>(S).Body);
        break;
      case StmtKind::DoWhile:
        visit(*stmtCast<DoWhileStmt>(S).Body);
        break;
      case StmtKind::For:
        visit(*stmtCast<ForStmt>(S).Body);
        break;
      default:
        break;
      }
    }
  } W;
  W.visit(*F.Body);
  MaxLine = std::max(MaxLine, W.Max);
  return MaxLine >= F.Line ? MaxLine - F.Line + 1 : 1;
}

} // namespace

SourceProgram lang::compileSourceProgram(const std::string &Source,
                                         const std::string &EntryName,
                                         const SourceProgramOptions &Opts) {
  SourceProgram Result;

  ParseResult Parsed = parseTranslationUnit(Source);
  Result.Diags = std::move(Parsed.Diags);
  Result.Unit = std::shared_ptr<TranslationUnit>(std::move(Parsed.TU));
  if (!Result.Diags.empty())
    return Result;

  if (!analyze(*Result.Unit, Result.Diags))
    return Result;

  Result.Entry = Result.Unit->findFunction(EntryName);
  if (!Result.Entry) {
    Result.Diags.push_back(
        {0, "entry function '" + EntryName + "' not defined"});
    return Result;
  }
  if (Result.Entry->Params.empty()) {
    Result.Diags.push_back(
        {Result.Entry->Line,
         "entry function '" + EntryName + "' takes no inputs"});
    return Result;
  }

  Result.Interp =
      std::make_shared<Interpreter>(*Result.Unit, Opts.Interp);
  if (Result.Interp->trapped()) {
    Result.Diags.push_back({0, Result.Interp->trapMessage()});
    return Result;
  }

  Result.Prog.Name = EntryName;
  Result.Prog.File = "<source>";
  Result.Prog.Arity = static_cast<unsigned>(Result.Entry->Params.size());
  Result.Prog.NumSites = Result.Unit->NumSites;
  Result.Prog.TotalLines =
      Opts.TotalLines ? Opts.TotalLines : functionLineExtent(*Result.Entry);

  if (Opts.Tier == ExecutionTier::Bytecode ||
      Opts.Tier == ExecutionTier::Jit) {
    bc::CompileResult Compiled =
        bc::compileUnit(*Result.Unit, Opts.Interp, Opts.Fuse);
    if (!Compiled.success()) {
      Result.Diags.push_back({0, Compiled.Error});
      return Result;
    }
    Result.Code = Compiled.Unit;
    int EntryIdx = Result.Code->functionIndex(EntryName);
    assert(EntryIdx >= 0 && "entry function survived Sema but not compile");
    // The Jit tier rides the bytecode tier: build native fragments for the
    // eligible functions once, and let every per-thread Vm attach them.
    // A null JitUnit (no-JIT build, nothing eligible) degrades to the
    // plain VM transparently — same closures, Jit stays null.
    if (Opts.Tier == ExecutionTier::Jit)
      Result.Jit = bc::JitUnit::build(Result.Code);
    // Shared immutable code, per-thread Vm state: the body is reentrant,
    // so campaign rounds shard across the ThreadPool (compile once, run
    // per thread). The exception is a program that writes global storage:
    // each Vm holds a private global-arena copy, so concurrent workers
    // would see diverging globals and break thread-count invariance —
    // the compiler flags those and the engine clamps them to one thread.
    // The closure shares ownership of the unit and code, so the Program
    // outlives this SourceProgram if the caller copies it out.
    Result.Prog.ThreadSafeBody = !Result.Code->WritesGlobals;
    Result.Prog.Body = [Unit = Result.Unit, Code = Result.Code,
                        Jit = Result.Jit,
                        EntryIdx = static_cast<unsigned>(EntryIdx),
                        InterpOpts = Opts.Interp](const double *Args) {
      return bc::threadLocalVm(Code, InterpOpts, Jit)
          .callEntry(EntryIdx, Args);
    };
    // Per-run fast path: resolve the calling thread's Vm once and bind
    // the entry (cell layout, result conversion) once, then every probe
    // is a direct bound call — the per-call thread-local cache lookup,
    // shared_ptr traffic, and per-call entry setup drop out of the
    // minimization hot loop. Same Vm as the per-call path on the same
    // thread, so results are bit-identical. The batch trampoline is the
    // genuinely wide backend behind RepresentingFunction::evalBatch:
    // CMA-ES generations and DE/NM seeding land in Vm::runBatch, which
    // hoists the per-probe entry bookkeeping out of the generation loop.
    Result.Prog.Binder = [Code = Result.Code, Jit = Result.Jit,
                          EntryIdx = static_cast<unsigned>(EntryIdx),
                          InterpOpts = Opts.Interp]() {
      bc::Vm &V = bc::threadLocalVm(Code, InterpOpts, Jit);
      V.bindEntry(EntryIdx);
      Program::BoundBody B;
      B.Invoke = [](void *State, uint64_t Imm, const double *Args) {
        return static_cast<bc::Vm *>(State)->callEntry(
            static_cast<unsigned>(Imm), Args);
      };
      B.InvokeBatch = [](void *State, uint64_t Imm, const double *Xs,
                         size_t Count, size_t N, double *Out) {
        static_cast<bc::Vm *>(State)->runBatch(static_cast<unsigned>(Imm),
                                               Xs, Count, N, Out);
      };
      B.State = &V;
      B.Imm = EntryIdx;
      return B;
    };
    return Result;
  }

  // Tree-walker tier: the closure routes every call through one shared
  // Interpreter, which is thread-compatible but not thread-safe (see
  // lang/Interp.h) — the campaign engine clamps such bodies to one thread.
  Result.Prog.ThreadSafeBody = false;
  Result.Prog.Body = [Unit = Result.Unit, Interp = Result.Interp,
                      Entry = Result.Entry](const double *Args) {
    return Interp->callEntry(*Entry, Args);
  };
  return Result;
}
