//===- Compiler.h - AST to bytecode lowering ------------------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers an analyzed TranslationUnit to the bytecode of lang/Bytecode.h.
/// The lowering is a direct syntax-directed walk that reuses everything
/// Sema computed — expression types drive opcode selection, VarDecl byte
/// offsets become fused frame/global accesses, and the conditional-site
/// ids stamped on statements become CondSite instructions — so the VM
/// fires the same rt::cond hooks in the same order as the tree-walker.
///
/// File-scope initializers are compiled into a one-shot init routine and
/// executed once, at compile time, on a scratch Vm; the resulting global
/// arena bytes ship inside the CompiledUnit and every per-thread Vm starts
/// from a copy.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_LANG_COMPILER_H
#define COVERME_LANG_COMPILER_H

#include "lang/Bytecode.h"
#include "lang/Interp.h"

#include <memory>
#include <string>

namespace coverme {
namespace lang {
namespace bc {

/// Outcome of compiling a translation unit.
struct CompileResult {
  /// Null when compilation (or global initialization) failed.
  std::shared_ptr<const CompiledUnit> Unit;
  std::string Error;

  bool success() const { return Unit != nullptr; }
};

/// Compiles \p TU (which must have passed Sema::analyze) to bytecode and
/// runs its file-scope initializers once to bake the global image.
/// \p GlobalInitOpts bounds that one-off init run exactly as InterpOptions
/// bounds the interpreter's.
///
/// When \p Fuse is set (the default) the peephole pass rewrites the
/// stream with superinstructions for the measured-hot sequences — fused
/// loads-and-arithmetic, constant-operand arithmetic, widened integer
/// loads, and compare-then-branch (instrumented CondSites included: the
/// fused form fires the same rt::cond hooks in the same order). Every
/// superinstruction carries the step cost of the sequence it replaces, so
/// fused and unfused execution drain InterpOptions::MaxSteps identically
/// and trap at the same points; the differential suite holds both streams
/// bit-identical. Either way the unit ships with the BlockCost table the
/// VM's block-granular budget accounting reads.
CompileResult compileUnit(const TranslationUnit &TU,
                          const InterpOptions &GlobalInitOpts = {},
                          bool Fuse = true);

} // namespace bc
} // namespace lang
} // namespace coverme

#endif // COVERME_LANG_COMPILER_H
