//===- Vm.cpp - Stack VM for the compiled mini-C tier ---------------------===//
//
// The dispatch loops live in VmExecBody.inc, included twice below: once as
// the portable switch loop, once as GNU computed-goto direct threading
// (compiled in when the build sets COVERME_VM_CGOTO on a GNU-compatible
// toolchain; InterpOptions::Dispatch picks per Vm). Both loops execute the
// same handler text, so they cannot diverge semantically.

#include "lang/Vm.h"

#include "lang/FpSemantics.h"
#include "lang/Jit.h"
#include "runtime/ExecutionContext.h"
#include "support/CpuFeatures.h"
#include "support/FaultInject.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <unordered_map>

using namespace coverme;
using namespace coverme::lang;
using namespace coverme::lang::bc;

// The computed-goto loop needs GNU labels-as-values; MSVC and other
// non-GNU toolchains always get the switch loop.
#if defined(COVERME_VM_CGOTO) && (defined(__GNUC__) || defined(__clang__))
#define COVERME_VM_CGOTO_ENABLED 1
#else
#define COVERME_VM_CGOTO_ENABLED 0
#endif

// The wide batch lane's translation unit (VmWide.cpp) is only part of the
// build when CMake enables COVERME_VM_SIMD; this TU never executes AVX2
// instructions itself — the runtime cpuHasAvx2 check gates every route
// into the wide code.
#if defined(COVERME_VM_SIMD)
#define COVERME_VM_SIMD_ENABLED 1
#else
#define COVERME_VM_SIMD_ENABLED 0
#endif

// Shared with the JIT (lang/Jit.cpp declares these): builtins and the
// saturating conversions must be the very same routines on both executors
// so no libm or rounding drift between tiers is possible.
namespace coverme {
namespace lang {
namespace bc {
namespace detail {

/// Saturating double->int32 truncation, identical to the interpreter's
/// (C leaves out-of-range conversions undefined; execution must stay
/// total on hostile minimizer probes).
int32_t truncToInt32(double V) {
  if (V != V)
    return 0;
  if (V >= 2147483647.0)
    return 2147483647;
  if (V <= -2147483648.0)
    return std::numeric_limits<int32_t>::min();
  return static_cast<int32_t>(V);
}

uint32_t truncToUInt32(double V) {
  if (V != V)
    return 0;
  if (V >= 4294967295.0)
    return 4294967295u;
  if (V <= 0.0)
    return 0u;
  return static_cast<uint32_t>(V);
}

bool evalCmp(CmpOp Op, double L, double R) {
  switch (Op) {
  case CmpOp::EQ:
    return L == R;
  case CmpOp::NE:
    return L != R;
  case CmpOp::LT:
    return L < R;
  case CmpOp::LE:
    return L <= R;
  case CmpOp::GT:
    return L > R;
  case CmpOp::GE:
    return L >= R;
  }
  assert(false && "unknown CmpOp");
  return false;
}

template <typename T> bool evalCmpInt(CmpOp Op, T L, T R) {
  switch (Op) {
  case CmpOp::EQ:
    return L == R;
  case CmpOp::NE:
    return L != R;
  case CmpOp::LT:
    return L < R;
  case CmpOp::LE:
    return L <= R;
  case CmpOp::GT:
    return L > R;
  case CmpOp::GE:
    return L >= R;
  }
  assert(false && "unknown CmpOp");
  return false;
}

double runBuiltin(BuiltinId Id, double A, double B, int32_t N) {
  switch (Id) {
  case BuiltinId::Fabs:
    return std::fabs(A);
  case BuiltinId::Sqrt:
    return std::sqrt(A);
  case BuiltinId::Sin:
    return std::sin(A);
  case BuiltinId::Cos:
    return std::cos(A);
  case BuiltinId::Tan:
    return std::tan(A);
  case BuiltinId::Asin:
    return std::asin(A);
  case BuiltinId::Acos:
    return std::acos(A);
  case BuiltinId::Atan:
    return std::atan(A);
  case BuiltinId::Exp:
    return std::exp(A);
  case BuiltinId::Log:
    return std::log(A);
  case BuiltinId::Log10:
    return std::log10(A);
  case BuiltinId::Log1p:
    return std::log1p(A);
  case BuiltinId::Expm1:
    return std::expm1(A);
  case BuiltinId::Floor:
    return std::floor(A);
  case BuiltinId::Ceil:
    return std::ceil(A);
  case BuiltinId::Rint:
    return std::rint(A);
  case BuiltinId::Trunc:
    return std::trunc(A);
  case BuiltinId::Cbrt:
    return std::cbrt(A);
  case BuiltinId::Sinh:
    return std::sinh(A);
  case BuiltinId::Cosh:
    return std::cosh(A);
  case BuiltinId::Tanh:
    return std::tanh(A);
  case BuiltinId::J0:
    return ::j0(A);
  case BuiltinId::J1:
    return ::j1(A);
  case BuiltinId::Y0:
    return ::y0(A);
  case BuiltinId::Y1:
    return ::y1(A);
  case BuiltinId::Pow:
    return std::pow(A, B);
  case BuiltinId::Fmod:
    return std::fmod(A, B);
  case BuiltinId::Atan2:
    return std::atan2(A, B);
  case BuiltinId::Hypot:
    return std::hypot(A, B);
  case BuiltinId::Copysign:
    return std::copysign(A, B);
  case BuiltinId::Fmin:
    return std::fmin(A, B);
  case BuiltinId::Fmax:
    return std::fmax(A, B);
  case BuiltinId::Scalbn:
    return std::scalbn(A, N);
  }
  assert(false && "unknown BuiltinId");
  return std::numeric_limits<double>::quiet_NaN();
}

} // namespace detail
} // namespace bc
} // namespace lang
} // namespace coverme

// The dispatch-loop body (VmExecBody.inc) and the probe paths below call
// these unqualified, as before the JIT shared them.
using coverme::lang::bc::detail::evalCmp;
using coverme::lang::bc::detail::evalCmpInt;
using coverme::lang::bc::detail::runBuiltin;
using coverme::lang::bc::detail::truncToInt32;
using coverme::lang::bc::detail::truncToUInt32;

bool Vm::cgotoAvailable() { return COVERME_VM_CGOTO_ENABLED != 0; }

bool Vm::simdAvailable() {
  return COVERME_VM_SIMD_ENABLED != 0 && cpuHasAvx2();
}

bool Vm::wideBatchEligible(unsigned FnIndex) {
  if (Bound.Index != FnIndex)
    bindEntry(FnIndex);
  return Bound.Wide;
}

Vm::Vm(std::shared_ptr<const CompiledUnit> Unit, InterpOptions Opts)
    : Unit(std::move(Unit)), Opts(Opts) {
  switch (Opts.Dispatch) {
  case VmDispatch::Switch:
    CGoto = false;
    break;
  case VmDispatch::Auto:
  case VmDispatch::ComputedGoto:
    CGoto = cgotoAvailable();
    break;
  }
  // The wide lane resolves per Vm; an injected init failure here leaves
  // every batch on the scalar backends (the same degradation a host
  // without AVX2 or a -DCOVERME_VM_SIMD=OFF build takes), bit-identically.
  SimdOn = Opts.Simd != VmSimd::Off && simdAvailable() &&
           !faultinject::shouldFail("vm.simd.init");
  OpStack.resize(kOpStackSlots);
  GlobalMem = this->Unit->GlobalImage;
  // Pre-bake scratch Vms start before the image exists.
  if (GlobalMem.size() < this->Unit->GlobalBytes)
    GlobalMem.resize(this->Unit->GlobalBytes, 0);
}

void Vm::trap(const char *Why) {
  if (!Trapped) {
    Trapped = true;
    Message = Why;
  }
}

uint8_t *Vm::resolve(uint64_t Ptr, unsigned Size) {
  switch (ptrSpace(Ptr)) {
  case Space::Null:
    trap("null pointer dereference");
    return nullptr;
  case Space::Global: {
    uint32_t Off = ptrOffset(Ptr);
    if (static_cast<uint64_t>(Off) + Size > GlobalMem.size()) {
      trap("out-of-bounds memory access");
      return nullptr;
    }
    return GlobalMem.data() + Off;
  }
  case Space::Frame: {
    uint32_t Off = ptrOffset(Ptr);
    if (static_cast<uint64_t>(Off) + Size > FrameMem.size()) {
      trap("out-of-bounds memory access");
      return nullptr;
    }
    return FrameMem.data() + Off;
  }
  default:
    // A pointer loaded from reinterpreted non-pointer bytes.
    trap("out-of-bounds memory access");
    return nullptr;
  }
}

size_t Vm::exec(uint32_t StartPC, size_t SP0) {
#if COVERME_VM_CGOTO_ENABLED
  if (CGoto)
    return execCGoto(StartPC, SP0);
#endif
  return execSwitch(StartPC, SP0);
}

size_t Vm::execSwitch(uint32_t StartPC, size_t SP0) {
#define VM_USE_CGOTO 0
#include "lang/VmExecBody.inc"
#undef VM_USE_CGOTO
}

#if COVERME_VM_CGOTO_ENABLED
size_t Vm::execCGoto(uint32_t StartPC, size_t SP0) {
#define VM_USE_CGOTO 1
#include "lang/VmExecBody.inc"
#undef VM_USE_CGOTO
}
#else
size_t Vm::execCGoto(uint32_t StartPC, size_t SP0) {
  return execSwitch(StartPC, SP0); // this build has no computed-goto loop
}
#endif

bool Vm::runGlobalInit() {
  Trapped = false;
  Message.clear();
  if (Unit->GlobalInitMaxDepth > OpStack.size()) {
    trap("operand stack overflow");
    return false;
  }
  StepsLeft = Opts.MaxSteps;
  Frames.clear();
  FrameMem.clear();
  FrameTop = 0;
  GlobalMem.assign(Unit->GlobalBytes, 0);
  exec(Unit->GlobalInitEntry, 0);
  return !Trapped;
}

void Vm::attachJit(std::shared_ptr<const JitUnit> J) {
  if (J && &J->unit() != Unit.get())
    return; // a JIT form of some other unit: ignore
  Jit = std::move(J);
  Bound = BoundEntry{}; // rebind so the fragment pointer resolves
}

void Vm::bindEntry(unsigned FnIndex) {
  assert(FnIndex < Unit->Functions.size() && "bad function index");
  const FunctionInfo &F = Unit->Functions[FnIndex];
  Bound.Fn = &F;
  Bound.Index = FnIndex;
  Bound.CellBytes = 0;
  Bound.Valid = true;
  Bound.Frag = Jit ? Jit->fragment(FnIndex) : nullptr;
  Bound.InvalidMessage.clear();
  for (const Type &T : F.ParamTypes) {
    if (T.isPointer()) {
      // Only double* entry parameters lower per Sect. 5.3; the first
      // offending parameter's message matches the unbound path's trap.
      if (Bound.Valid && T.pointee() != Type(BaseType::Double)) {
        Bound.Valid = false;
        Bound.InvalidMessage = "unsupported entry parameter type " +
                               typeName(T);
      }
      Bound.CellBytes += 8;
    } else if (Bound.Valid && T.Base == BaseType::Void) {
      Bound.Valid = false;
      Bound.InvalidMessage = "void entry parameter";
    }
  }
  Bound.EntryTrap = nullptr;
  Bound.StepsAfterThunk = 0;
  Bound.EntryNeeded = Bound.CellBytes + F.FrameBytes;
  // The wide batch lane shares one read-only global image across its four
  // rows, so it requires the compiler's per-function wide-safety proof
  // (no reachable global store) *and* the unit-level escape bit clear (no
  // checked store can alias global space either). JIT-fragmented entries
  // route probes natively and never reach the wide loop.
  Bound.Wide = SimdOn && Bound.Valid && !Bound.Frag &&
               !Unit->WritesGlobals && F.WideSafe;
  Bound.WideFrag = nullptr;
  if (Bound.Frag && Bound.Valid) {
    // Evaluate jitProbe's per-call guards once, in the VM's exact check
    // order: thunk budget charge, then the Call handler's depth / stack /
    // operand guards. Each outcome is constant across probes of this
    // binding, so the probe only tests EntryTrap.
    uint32_t ThunkCost = Unit->BlockCost[F.Thunk];
    if (Opts.MaxSteps < ThunkCost)
      Bound.EntryTrap = "step budget exhausted";
    else if (Opts.MaxCallDepth == 0)
      Bound.EntryTrap = "call depth limit exceeded";
    else if (static_cast<uint64_t>(Bound.CellBytes) + F.FrameBytes >
             Opts.MaxStackBytes)
      Bound.EntryTrap = "interpreter stack overflow";
    else if (F.MaxOperandDepth > kOpStackSlots)
      Bound.EntryTrap = "operand stack overflow";
    else
      Bound.StepsAfterThunk = Opts.MaxSteps - ThunkCost;
    // The 4-lane wide fragment composes the SIMD lane with the scalar
    // fragment (which retired lanes re-run through), so it needs both:
    // SIMD resolved on this Vm and a clean per-binding entry (a constant
    // entry trap makes every row trap identically — scalar handles that).
    if (!Bound.EntryTrap && SimdOn)
      Bound.WideFrag = Jit->wideFragment(FnIndex);
  }
}

double Vm::boundProbe(const double *Args) {
  if (Bound.Frag)
    return jitProbe(Args);
  constexpr double NaN = std::numeric_limits<double>::quiet_NaN();
  const FunctionInfo &F = *Bound.Fn;
  Trapped = false;
  if (!Message.empty())
    Message.clear();
  if (!Bound.Valid) {
    Trapped = true;
    Message = Bound.InvalidMessage;
    return NaN;
  }
  StepsLeft = Opts.MaxSteps;
  Frames.clear();

  // Entry lowering (Sect. 5.3): pointer-parameter cells live at the
  // bottom of the frame arena, below the first frame, exactly like the
  // interpreter's. Shrinking (rather than zero-filling) the arena to the
  // cell prefix reproduces the per-call arena trajectory bit-exactly:
  // every cell byte is overwritten by the marshaling loop, and later
  // frame growth value-initializes, so stale bytes from a previous probe
  // are never observable.
  FrameMem.resize(Bound.CellBytes);
  FrameTop = Bound.CellBytes;

  size_t SP = 0;
  uint32_t NextCell = 0;
  for (size_t P = 0; P < F.ParamTypes.size(); ++P) {
    const Type T = F.ParamTypes[P];
    Slot S{}; // zero-initialized; silences -Wmaybe-uninitialized
    if (T.isPointer()) {
      std::memcpy(FrameMem.data() + NextCell, &Args[P], 8);
      S.U = encodePtr(Space::Frame, NextCell);
      NextCell += 8;
    } else {
      switch (T.Base) {
      case BaseType::Double:
        S.D = Args[P];
        break;
      case BaseType::Int:
        S.I = truncToInt32(Args[P]);
        break;
      case BaseType::UInt:
        S.U = truncToUInt32(Args[P]);
        break;
      case BaseType::Void:
        break; // unreachable: bindEntry flagged void parameters
      }
    }
    OpStack[SP++] = S;
  }

  size_t End = exec(F.Thunk, SP);
  if (Trapped)
    return NaN;
  if (F.ReturnType.isVoid())
    return 0.0;
  assert(End >= 1 && "entry call left no result");
  const Slot R = OpStack[End - 1];
  if (F.ReturnType.isPointer()) {
    trap("pointer used as a number");
    return NaN;
  }
  switch (F.ReturnType.Base) {
  case BaseType::Double:
    return R.D;
  case BaseType::Int:
    return static_cast<double>(R.I);
  case BaseType::UInt:
    return static_cast<double>(static_cast<uint32_t>(R.U));
  case BaseType::Void:
    break;
  }
  return 0.0;
}

double Vm::jitProbe(const double *Args) {
  constexpr double NaN = std::numeric_limits<double>::quiet_NaN();
  const FunctionInfo &F = *Bound.Fn;
  Trapped = false;
  if (!Message.empty())
    Message.clear();
  if (!Bound.Valid) {
    Trapped = true;
    Message = Bound.InvalidMessage;
    return NaN;
  }
  Frames.clear();
  if (Bound.EntryTrap) {
    // Cold: one of the entry guards fires on every probe of this binding.
    // Replay the original sequence so trap-side state (StepsLeft, arena
    // size) stays exactly what the guard-by-guard path produced.
    StepsLeft = Opts.MaxSteps;
    FrameMem.resize(Bound.CellBytes);
    FrameTop = Bound.CellBytes;
    uint32_t ThunkCost = Unit->BlockCost[F.Thunk];
    if (StepsLeft >= ThunkCost)
      StepsLeft -= ThunkCost;
    trap(Bound.EntryTrap);
    return NaN;
  }

  // Hot: bindEntry already charged the thunk block and cleared the Call
  // handler's guards (their outcomes are per-binding constants), so the
  // probe only establishes the frame: the arena keeps its high-water size
  // and the frame region is zeroed in place — the same bytes the VM's
  // shrink-then-grow resize trajectory produces.
  StepsLeft = Bound.StepsAfterThunk;
  const uint32_t Base = Bound.CellBytes;
  if (FrameMem.size() < Bound.EntryNeeded)
    FrameMem.resize(Bound.EntryNeeded);
  std::memset(FrameMem.data() + Base, 0, F.FrameBytes);
  FrameTop = Bound.EntryNeeded;

  // Entry lowering (Sect. 5.3) fused with the Call handler's marshaling:
  // pointer arguments seed a fresh cell below the frame, scalars convert
  // exactly as boundProbe's slots would.
  uint32_t NextCell = 0;
  for (size_t P = 0; P < F.ParamTypes.size(); ++P) {
    const Type T = F.ParamTypes[P];
    uint8_t *M = FrameMem.data() + Base + F.ParamOffsets[P];
    if (T.isPointer()) {
      std::memcpy(FrameMem.data() + NextCell, &Args[P], 8);
      uint64_t Ptr = encodePtr(Space::Frame, NextCell);
      std::memcpy(M, &Ptr, 8);
      NextCell += 8;
      continue;
    }
    switch (T.Base) {
    case BaseType::Double:
      std::memcpy(M, &Args[P], 8);
      break;
    case BaseType::Int: {
      int32_t W = truncToInt32(Args[P]);
      std::memcpy(M, &W, 4);
      break;
    }
    case BaseType::UInt: {
      uint32_t W = truncToUInt32(Args[P]);
      std::memcpy(M, &W, 4);
      break;
    }
    case BaseType::Void:
      break; // unreachable: bindEntry flagged void parameters
    }
  }

  JitFrame JF;
  JF.FMem = FrameMem.data();
  JF.GMem = GlobalMem.data();
  JF.Pool = Unit->DoublePool.data();
  JF.StepsLeft = StepsLeft;
  JF.ResultBits = 0;
  JF.TrapCode = 0;
  JF.TrapAux = 0;
  JF.CondFast = ExecutionContext::current() == nullptr;
  Bound.Frag(&JF);
  StepsLeft = JF.StepsLeft;

  if (JF.TrapCode) {
    switch (static_cast<JitTrap>(JF.TrapCode)) {
    case JitTrap::Budget:
      trap("step budget exhausted");
      break;
    case JitTrap::NullDeref:
      trap("null pointer dereference");
      break;
    case JitTrap::OutOfBounds:
      trap("out-of-bounds memory access");
      break;
    case JitTrap::DivZero:
      trap("integer division by zero");
      break;
    case JitTrap::RemZero:
      trap("integer remainder by zero");
      break;
    case JitTrap::BadPtrConv:
      trap("invalid conversion to pointer type");
      break;
    case JitTrap::Message:
      trap(Unit->TrapMessages[JF.TrapAux].c_str());
      break;
    case JitTrap::None:
      break;
    }
    return NaN;
  }
  if (F.ReturnType.isVoid())
    return 0.0;
  if (F.ReturnType.isPointer()) {
    trap("pointer used as a number");
    return NaN;
  }
  Slot R;
  R.U = JF.ResultBits;
  switch (F.ReturnType.Base) {
  case BaseType::Double:
    return R.D;
  case BaseType::Int:
    return static_cast<double>(R.I);
  case BaseType::UInt:
    return static_cast<double>(static_cast<uint32_t>(R.U));
  case BaseType::Void:
    break;
  }
  return 0.0;
}

double Vm::callEntry(unsigned FnIndex, const double *Args) {
  if (Bound.Index != FnIndex)
    bindEntry(FnIndex);
  return boundProbe(Args);
}

double Vm::callEntry(const std::string &Name, const double *Args) {
  int Idx = Unit->functionIndex(Name);
  if (Idx < 0) {
    Trapped = true;
    Message = "unknown entry function '" + Name + "'";
    return std::numeric_limits<double>::quiet_NaN();
  }
  return callEntry(static_cast<unsigned>(Idx), Args);
}

void Vm::runBatch(unsigned FnIndex, const double *Xs, size_t Count, size_t N,
                  double *Out) {
  if (Bound.Index != FnIndex)
    bindEntry(FnIndex);
  ExecutionContext *Ctx = ExecutionContext::current();
#if COVERME_VM_SIMD_ENABLED
  // JIT-fragmented entries with a 4-lane wide fragment take it for full
  // lane groups — the composition of the two accelerators. The native pen
  // block only covers the no-context and the fast FOO_R context shapes;
  // the generic record-and-replay shapes stay on the scalar fragment rows.
  if (Bound.WideFrag && Count >= wide::kWideLanes &&
      (!Ctx || (Ctx->PenEnabled && !Ctx->Coverage && Ctx->TraceEnabled &&
                !Ctx->RecordTraceOperands && !Ctx->RecordOperands))) {
    runBatchJitWide(Ctx, Xs, Count, N, Out);
    return;
  }
  // Batches with at least one full lane group take the wide SOA executor;
  // it retires any row it cannot finish wide (divergence, traps, the
  // ragged tail) back to the same probeRow driver the scalar loop below
  // uses, so every row stays bit-identical either way.
  if (Bound.Wide && Count >= wide::kWideLanes) {
    runBatchWide(Ctx, Xs, Count, N, Out);
    return;
  }
#endif
  // With a context installed this is the batched FOO_R entry: each row is
  // the exact BoundRun::eval sequence (beginRun, body, read r), with the
  // binding and per-batch bookkeeping above the loop instead of inside
  // it. Without one it degenerates to a loop of plain body calls. One
  // templated row driver carries both shapes.
  if (Ctx)
    runRows<true>(Ctx, Xs, Count, N, Out);
  else
    runRows<false>(static_cast<ExecutionContext *>(nullptr), Xs, Count, N, Out);
}

const char *Vm::batchBackendName(unsigned FnIndex) {
  if (Bound.Index != FnIndex)
    bindEntry(FnIndex);
  if (Bound.WideFrag)
    return "jit-wide";
  if (Bound.Wide)
    return "vm-wide";
  if (Bound.Frag)
    return "scalar-jit";
  return "scalar";
}

Vm &bc::threadLocalVm(const std::shared_ptr<const CompiledUnit> &Unit,
                      const InterpOptions &Opts) {
  // One-entry fast path: a campaign worker hammers a single subject, so
  // the last-used pair hits on effectively every evaluation.
  thread_local const CompiledUnit *LastUnit = nullptr;
  thread_local Vm *LastVm = nullptr;
  if (LastUnit == Unit.get())
    return *LastVm;

  // Fallback map for threads interleaving several programs. Entries hold
  // shared ownership of their unit, so a cached raw key can never be
  // reused by a new allocation while it is in the cache (no ABA).
  thread_local std::unordered_map<const CompiledUnit *, std::unique_ptr<Vm>>
      Cache;
  auto It = Cache.find(Unit.get());
  if (It == Cache.end()) {
    // Before admitting a new unit, evict entries this cache is the last
    // owner of — their Programs are gone, so no caller can reach them
    // again. This bounds the cache for compile-and-run churn (fuzz loops,
    // repeated compileSourceProgram calls) at "units still alive" per
    // thread rather than "units ever seen".
    for (auto E = Cache.begin(); E != Cache.end();) {
      if (E->second->unitUseCount() == 1) {
        if (LastUnit == E->first) {
          LastUnit = nullptr;
          LastVm = nullptr;
        }
        E = Cache.erase(E);
      } else {
        ++E;
      }
    }
    It = Cache.emplace(Unit.get(), std::make_unique<Vm>(Unit, Opts)).first;
  }
  LastUnit = Unit.get();
  LastVm = It->second.get();
  return *LastVm;
}

Vm &bc::threadLocalVm(const std::shared_ptr<const CompiledUnit> &Unit,
                      const InterpOptions &Opts,
                      const std::shared_ptr<const JitUnit> &Jit) {
  Vm &V = threadLocalVm(Unit, Opts);
  if (Jit && !V.jitUnit())
    V.attachJit(Jit);
  return V;
}
