//===- Vm.cpp - Stack VM for the compiled mini-C tier ---------------------===//

#include "lang/Vm.h"

#include "runtime/ExecutionContext.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <unordered_map>

using namespace coverme;
using namespace coverme::lang;
using namespace coverme::lang::bc;

namespace {

/// Fixed operand-stack capacity. Never reallocated, so raw slot pointers
/// stay valid across the dispatch loop; per-function high-water marks are
/// checked against it at every Call.
constexpr size_t kOpStackSlots = 16384;

/// Saturating double->int32 truncation, identical to the interpreter's
/// (C leaves out-of-range conversions undefined; execution must stay
/// total on hostile minimizer probes).
int32_t truncToInt32(double V) {
  if (V != V)
    return 0;
  if (V >= 2147483647.0)
    return 2147483647;
  if (V <= -2147483648.0)
    return std::numeric_limits<int32_t>::min();
  return static_cast<int32_t>(V);
}

uint32_t truncToUInt32(double V) {
  if (V != V)
    return 0;
  if (V >= 4294967295.0)
    return 4294967295u;
  if (V <= 0.0)
    return 0u;
  return static_cast<uint32_t>(V);
}

bool evalCmp(CmpOp Op, double L, double R) {
  switch (Op) {
  case CmpOp::EQ:
    return L == R;
  case CmpOp::NE:
    return L != R;
  case CmpOp::LT:
    return L < R;
  case CmpOp::LE:
    return L <= R;
  case CmpOp::GT:
    return L > R;
  case CmpOp::GE:
    return L >= R;
  }
  assert(false && "unknown CmpOp");
  return false;
}

template <typename T> bool evalCmpInt(CmpOp Op, T L, T R) {
  switch (Op) {
  case CmpOp::EQ:
    return L == R;
  case CmpOp::NE:
    return L != R;
  case CmpOp::LT:
    return L < R;
  case CmpOp::LE:
    return L <= R;
  case CmpOp::GT:
    return L > R;
  case CmpOp::GE:
    return L >= R;
  }
  assert(false && "unknown CmpOp");
  return false;
}

double runBuiltin(BuiltinId Id, double A, double B, int32_t N) {
  switch (Id) {
  case BuiltinId::Fabs:
    return std::fabs(A);
  case BuiltinId::Sqrt:
    return std::sqrt(A);
  case BuiltinId::Sin:
    return std::sin(A);
  case BuiltinId::Cos:
    return std::cos(A);
  case BuiltinId::Tan:
    return std::tan(A);
  case BuiltinId::Asin:
    return std::asin(A);
  case BuiltinId::Acos:
    return std::acos(A);
  case BuiltinId::Atan:
    return std::atan(A);
  case BuiltinId::Exp:
    return std::exp(A);
  case BuiltinId::Log:
    return std::log(A);
  case BuiltinId::Log10:
    return std::log10(A);
  case BuiltinId::Log1p:
    return std::log1p(A);
  case BuiltinId::Expm1:
    return std::expm1(A);
  case BuiltinId::Floor:
    return std::floor(A);
  case BuiltinId::Ceil:
    return std::ceil(A);
  case BuiltinId::Rint:
    return std::rint(A);
  case BuiltinId::Trunc:
    return std::trunc(A);
  case BuiltinId::Cbrt:
    return std::cbrt(A);
  case BuiltinId::Sinh:
    return std::sinh(A);
  case BuiltinId::Cosh:
    return std::cosh(A);
  case BuiltinId::Tanh:
    return std::tanh(A);
  case BuiltinId::J0:
    return ::j0(A);
  case BuiltinId::J1:
    return ::j1(A);
  case BuiltinId::Y0:
    return ::y0(A);
  case BuiltinId::Y1:
    return ::y1(A);
  case BuiltinId::Pow:
    return std::pow(A, B);
  case BuiltinId::Fmod:
    return std::fmod(A, B);
  case BuiltinId::Atan2:
    return std::atan2(A, B);
  case BuiltinId::Hypot:
    return std::hypot(A, B);
  case BuiltinId::Copysign:
    return std::copysign(A, B);
  case BuiltinId::Fmin:
    return std::fmin(A, B);
  case BuiltinId::Fmax:
    return std::fmax(A, B);
  case BuiltinId::Scalbn:
    return std::scalbn(A, N);
  }
  assert(false && "unknown BuiltinId");
  return std::numeric_limits<double>::quiet_NaN();
}

} // namespace

Vm::Vm(std::shared_ptr<const CompiledUnit> Unit, InterpOptions Opts)
    : Unit(std::move(Unit)), Opts(Opts) {
  OpStack.resize(kOpStackSlots);
  GlobalMem = this->Unit->GlobalImage;
  // Pre-bake scratch Vms start before the image exists.
  if (GlobalMem.size() < this->Unit->GlobalBytes)
    GlobalMem.resize(this->Unit->GlobalBytes, 0);
}

void Vm::trap(const char *Why) {
  if (!Trapped) {
    Trapped = true;
    Message = Why;
  }
}

uint8_t *Vm::resolve(uint64_t Ptr, unsigned Size) {
  switch (ptrSpace(Ptr)) {
  case Space::Null:
    trap("null pointer dereference");
    return nullptr;
  case Space::Global: {
    uint32_t Off = ptrOffset(Ptr);
    if (static_cast<uint64_t>(Off) + Size > GlobalMem.size()) {
      trap("out-of-bounds memory access");
      return nullptr;
    }
    return GlobalMem.data() + Off;
  }
  case Space::Frame: {
    uint32_t Off = ptrOffset(Ptr);
    if (static_cast<uint64_t>(Off) + Size > FrameMem.size()) {
      trap("out-of-bounds memory access");
      return nullptr;
    }
    return FrameMem.data() + Off;
  }
  default:
    // A pointer loaded from reinterpreted non-pointer bytes.
    trap("out-of-bounds memory access");
    return nullptr;
  }
}

size_t Vm::exec(uint32_t StartPC, size_t SP0) {
  const Insn *Code = Unit->Code.data();
  const double *Pool = Unit->DoublePool.data();
  const FunctionInfo *Fns = Unit->Functions.data();
  Slot *Stack = OpStack.data();
  Slot *SP = Stack + SP0;
  uint8_t *FMem = FrameMem.data();
  uint8_t *GMem = GlobalMem.data();
  uint32_t CurBase = Frames.empty() ? 0 : Frames.back().Base;
  uint32_t PC = StartPC;

  for (;;) {
    if (StepsLeft == 0) {
      trap("step budget exhausted");
      return SP - Stack;
    }
    --StepsLeft;
    const Insn &In = Code[PC];
    switch (In.Code) {
    // ---- constants --------------------------------------------------------
    case Op::ConstD:
      (SP++)->D = Pool[In.A];
      break;
    case Op::ConstI:
      (SP++)->I = static_cast<int32_t>(In.A);
      break;
    case Op::ConstU:
      (SP++)->U = In.A;
      break;

    // ---- stack shuffling --------------------------------------------------
    case Op::Pop:
      --SP;
      break;
    case Op::Dup:
      SP[0] = SP[-1];
      ++SP;
      break;
    case Op::Swap: {
      Slot T = SP[-1];
      SP[-1] = SP[-2];
      SP[-2] = T;
      break;
    }
    case Op::Rot: {
      Slot X = SP[-3];
      SP[-3] = SP[-2];
      SP[-2] = SP[-1];
      SP[-1] = X;
      break;
    }

    // ---- addresses --------------------------------------------------------
    case Op::AddrG:
      (SP++)->U = encodePtr(Space::Global, In.A);
      break;
    case Op::AddrF:
      (SP++)->U = encodePtr(Space::Frame, CurBase + In.A);
      break;

    // ---- checked accesses -------------------------------------------------
    case Op::LoadI: {
      uint8_t *M = resolve(SP[-1].U, 4);
      if (!M)
        return SP - Stack;
      int32_t V;
      std::memcpy(&V, M, 4);
      SP[-1].I = V;
      break;
    }
    case Op::LoadU: {
      uint8_t *M = resolve(SP[-1].U, 4);
      if (!M)
        return SP - Stack;
      uint32_t V;
      std::memcpy(&V, M, 4);
      SP[-1].U = V;
      break;
    }
    case Op::LoadD: {
      uint8_t *M = resolve(SP[-1].U, 8);
      if (!M)
        return SP - Stack;
      std::memcpy(&SP[-1].D, M, 8);
      break;
    }
    case Op::LoadP: {
      uint8_t *M = resolve(SP[-1].U, 8);
      if (!M)
        return SP - Stack;
      std::memcpy(&SP[-1].U, M, 8);
      break;
    }
    case Op::StoreI: {
      uint8_t *M = resolve(SP[-2].U, 4);
      if (!M)
        return SP - Stack;
      int32_t V = static_cast<int32_t>(SP[-1].I);
      std::memcpy(M, &V, 4);
      Slot Val = SP[-1];
      SP -= 2;
      if (In.B)
        *SP++ = Val;
      break;
    }
    case Op::StoreU: {
      uint8_t *M = resolve(SP[-2].U, 4);
      if (!M)
        return SP - Stack;
      uint32_t V = static_cast<uint32_t>(SP[-1].U);
      std::memcpy(M, &V, 4);
      Slot Val = SP[-1];
      SP -= 2;
      if (In.B)
        *SP++ = Val;
      break;
    }
    case Op::StoreD: {
      uint8_t *M = resolve(SP[-2].U, 8);
      if (!M)
        return SP - Stack;
      std::memcpy(M, &SP[-1].D, 8);
      Slot Val = SP[-1];
      SP -= 2;
      if (In.B)
        *SP++ = Val;
      break;
    }
    case Op::StoreP: {
      uint8_t *M = resolve(SP[-2].U, 8);
      if (!M)
        return SP - Stack;
      std::memcpy(M, &SP[-1].U, 8);
      Slot Val = SP[-1];
      SP -= 2;
      if (In.B)
        *SP++ = Val;
      break;
    }

    // ---- fused unchecked accesses ----------------------------------------
    case Op::LdFI: {
      int32_t V;
      std::memcpy(&V, FMem + CurBase + In.A, 4);
      (SP++)->I = V;
      break;
    }
    case Op::LdFU: {
      uint32_t V;
      std::memcpy(&V, FMem + CurBase + In.A, 4);
      (SP++)->U = V;
      break;
    }
    case Op::LdFD:
      std::memcpy(&(SP++)->D, FMem + CurBase + In.A, 8);
      break;
    case Op::LdFP:
      std::memcpy(&(SP++)->U, FMem + CurBase + In.A, 8);
      break;
    case Op::LdGI: {
      int32_t V;
      std::memcpy(&V, GMem + In.A, 4);
      (SP++)->I = V;
      break;
    }
    case Op::LdGU: {
      uint32_t V;
      std::memcpy(&V, GMem + In.A, 4);
      (SP++)->U = V;
      break;
    }
    case Op::LdGD:
      std::memcpy(&(SP++)->D, GMem + In.A, 8);
      break;
    case Op::LdGP:
      std::memcpy(&(SP++)->U, GMem + In.A, 8);
      break;
    case Op::StFI: {
      int32_t V = static_cast<int32_t>(SP[-1].I);
      std::memcpy(FMem + CurBase + In.A, &V, 4);
      if (!In.B)
        --SP;
      break;
    }
    case Op::StFU: {
      uint32_t V = static_cast<uint32_t>(SP[-1].U);
      std::memcpy(FMem + CurBase + In.A, &V, 4);
      if (!In.B)
        --SP;
      break;
    }
    case Op::StFD:
      std::memcpy(FMem + CurBase + In.A, &SP[-1].D, 8);
      if (!In.B)
        --SP;
      break;
    case Op::StFP:
      std::memcpy(FMem + CurBase + In.A, &SP[-1].U, 8);
      if (!In.B)
        --SP;
      break;
    case Op::StGI: {
      int32_t V = static_cast<int32_t>(SP[-1].I);
      std::memcpy(GMem + In.A, &V, 4);
      if (!In.B)
        --SP;
      break;
    }
    case Op::StGU: {
      uint32_t V = static_cast<uint32_t>(SP[-1].U);
      std::memcpy(GMem + In.A, &V, 4);
      if (!In.B)
        --SP;
      break;
    }
    case Op::StGD:
      std::memcpy(GMem + In.A, &SP[-1].D, 8);
      if (!In.B)
        --SP;
      break;
    case Op::StGP:
      std::memcpy(GMem + In.A, &SP[-1].U, 8);
      if (!In.B)
        --SP;
      break;
    case Op::ZeroF:
      std::memset(FMem + CurBase + In.A, 0, In.B);
      break;
    case Op::ZeroG:
      std::memset(GMem + In.A, 0, In.B);
      break;

    // ---- double arithmetic ------------------------------------------------
    case Op::AddD:
      SP[-2].D += SP[-1].D;
      --SP;
      break;
    case Op::SubD:
      SP[-2].D -= SP[-1].D;
      --SP;
      break;
    case Op::MulD:
      SP[-2].D *= SP[-1].D;
      --SP;
      break;
    case Op::DivD:
      SP[-2].D /= SP[-1].D; // IEEE: /0 yields inf/NaN
      --SP;
      break;
    case Op::NegD:
      SP[-1].D = -SP[-1].D;
      break;

    // ---- integer arithmetic -----------------------------------------------
    case Op::AddI:
      SP[-2].I = static_cast<int32_t>(static_cast<uint32_t>(SP[-2].I) +
                                      static_cast<uint32_t>(SP[-1].I));
      --SP;
      break;
    case Op::SubI:
      SP[-2].I = static_cast<int32_t>(static_cast<uint32_t>(SP[-2].I) -
                                      static_cast<uint32_t>(SP[-1].I));
      --SP;
      break;
    case Op::MulI:
      SP[-2].I = static_cast<int32_t>(static_cast<uint32_t>(SP[-2].I) *
                                      static_cast<uint32_t>(SP[-1].I));
      --SP;
      break;
    case Op::DivI: {
      int32_t L = static_cast<int32_t>(SP[-2].I);
      int32_t R = static_cast<int32_t>(SP[-1].I);
      if (R == 0) {
        trap("integer division by zero");
        return SP - Stack;
      }
      if (L == std::numeric_limits<int32_t>::min() && R == -1)
        SP[-2].I = L; // wrap rather than UB
      else
        SP[-2].I = L / R;
      --SP;
      break;
    }
    case Op::RemI: {
      int32_t L = static_cast<int32_t>(SP[-2].I);
      int32_t R = static_cast<int32_t>(SP[-1].I);
      if (R == 0) {
        trap("integer remainder by zero");
        return SP - Stack;
      }
      if (L == std::numeric_limits<int32_t>::min() && R == -1)
        SP[-2].I = 0;
      else
        SP[-2].I = L % R;
      --SP;
      break;
    }
    case Op::NegI:
      SP[-1].I = static_cast<int32_t>(0u - static_cast<uint32_t>(SP[-1].I));
      break;
    case Op::AddU:
      SP[-2].U = static_cast<uint32_t>(static_cast<uint32_t>(SP[-2].U) +
                                       static_cast<uint32_t>(SP[-1].U));
      --SP;
      break;
    case Op::SubU:
      SP[-2].U = static_cast<uint32_t>(static_cast<uint32_t>(SP[-2].U) -
                                       static_cast<uint32_t>(SP[-1].U));
      --SP;
      break;
    case Op::MulU:
      SP[-2].U = static_cast<uint32_t>(static_cast<uint32_t>(SP[-2].U) *
                                       static_cast<uint32_t>(SP[-1].U));
      --SP;
      break;
    case Op::DivU: {
      uint32_t R = static_cast<uint32_t>(SP[-1].U);
      if (R == 0) {
        trap("integer division by zero");
        return SP - Stack;
      }
      SP[-2].U = static_cast<uint32_t>(SP[-2].U) / R;
      --SP;
      break;
    }
    case Op::RemU: {
      uint32_t R = static_cast<uint32_t>(SP[-1].U);
      if (R == 0) {
        trap("integer remainder by zero");
        return SP - Stack;
      }
      SP[-2].U = static_cast<uint32_t>(SP[-2].U) % R;
      --SP;
      break;
    }
    case Op::NegU:
      SP[-1].U = 0u - static_cast<uint32_t>(SP[-1].U);
      break;
    case Op::ShlI: {
      uint32_t Amount = static_cast<uint32_t>(SP[-1].U) & 31u;
      SP[-2].I = static_cast<int32_t>(static_cast<uint32_t>(SP[-2].I)
                                      << Amount);
      --SP;
      break;
    }
    case Op::ShrI: {
      uint32_t Amount = static_cast<uint32_t>(SP[-1].U) & 31u;
      SP[-2].I = static_cast<int32_t>(SP[-2].I) >> Amount; // arithmetic
      --SP;
      break;
    }
    case Op::ShlU: {
      uint32_t Amount = static_cast<uint32_t>(SP[-1].U) & 31u;
      SP[-2].U = static_cast<uint32_t>(SP[-2].U) << Amount;
      --SP;
      break;
    }
    case Op::ShrU: {
      uint32_t Amount = static_cast<uint32_t>(SP[-1].U) & 31u;
      SP[-2].U = static_cast<uint32_t>(SP[-2].U) >> Amount;
      --SP;
      break;
    }
    case Op::And32:
      SP[-2].U = static_cast<uint32_t>(SP[-2].U) &
                 static_cast<uint32_t>(SP[-1].U);
      --SP;
      break;
    case Op::Or32:
      SP[-2].U = static_cast<uint32_t>(SP[-2].U) |
                 static_cast<uint32_t>(SP[-1].U);
      --SP;
      break;
    case Op::Xor32:
      SP[-2].U = static_cast<uint32_t>(SP[-2].U) ^
                 static_cast<uint32_t>(SP[-1].U);
      --SP;
      break;
    case Op::NotI:
      SP[-1].I = ~static_cast<int32_t>(SP[-1].I);
      break;
    case Op::NotU:
      SP[-1].U = ~static_cast<uint32_t>(SP[-1].U);
      break;

    // ---- truthiness -------------------------------------------------------
    case Op::BoolI:
      SP[-1].I = SP[-1].I != 0 ? 1 : 0;
      break;
    case Op::BoolD:
      SP[-1].I = SP[-1].D != 0.0 ? 1 : 0;
      break;
    case Op::BoolP:
      SP[-1].I = ptrSpace(SP[-1].U) != Space::Null ? 1 : 0;
      break;
    case Op::LogNotI:
      SP[-1].I = SP[-1].I != 0 ? 0 : 1;
      break;
    case Op::LogNotD:
      SP[-1].I = SP[-1].D != 0.0 ? 0 : 1;
      break;
    case Op::LogNotP:
      SP[-1].I = ptrSpace(SP[-1].U) != Space::Null ? 0 : 1;
      break;

    // ---- conversions ------------------------------------------------------
    case Op::I2D:
      SP[-1].D = static_cast<double>(SP[-1].I);
      break;
    case Op::U2D:
      SP[-1].D = static_cast<double>(static_cast<uint32_t>(SP[-1].U));
      break;
    case Op::D2I:
      SP[-1].I = truncToInt32(SP[-1].D);
      break;
    case Op::D2U:
      SP[-1].U = truncToUInt32(SP[-1].D);
      break;
    case Op::I2U:
      SP[-1].U = static_cast<uint32_t>(SP[-1].I);
      break;
    case Op::U2I:
      SP[-1].I = static_cast<int32_t>(static_cast<uint32_t>(SP[-1].U));
      break;
    case Op::I2P:
      if (SP[-1].I != 0) {
        trap("invalid conversion to pointer type");
        return SP - Stack;
      }
      SP[-1].U = 0; // the literal null pointer
      break;

    // ---- comparisons ------------------------------------------------------
    case Op::CmpD: {
      bool R = evalCmp(static_cast<CmpOp>(In.A), SP[-2].D, SP[-1].D);
      --SP;
      SP[-1].I = R ? 1 : 0;
      break;
    }
    case Op::CmpI: {
      bool R = evalCmpInt<int64_t>(static_cast<CmpOp>(In.A), SP[-2].I,
                                   SP[-1].I);
      --SP;
      SP[-1].I = R ? 1 : 0;
      break;
    }
    case Op::CmpU: {
      bool R = evalCmpInt<uint64_t>(static_cast<CmpOp>(In.A), SP[-2].U,
                                    SP[-1].U);
      --SP;
      SP[-1].I = R ? 1 : 0;
      break;
    }
    case Op::CmpP: {
      bool R = evalCmpInt<uint64_t>(static_cast<CmpOp>(In.A), SP[-2].U,
                                    SP[-1].U);
      --SP;
      SP[-1].I = R ? 1 : 0;
      break;
    }
    case Op::PNullCmp: {
      bool IsNull = ptrSpace(SP[-1].U) == Space::Null;
      SP[-1].I = ((In.A != 0) == IsNull) ? 1 : 0;
      break;
    }

    // ---- pointer arithmetic -----------------------------------------------
    case Op::PtrAdd: {
      int64_t Delta = static_cast<int64_t>(static_cast<int32_t>(SP[-1].I)) *
                      static_cast<int64_t>(In.A);
      if (In.B)
        Delta = -Delta;
      uint64_t Ptr = SP[-2].U;
      uint32_t Off = static_cast<uint32_t>(ptrOffset(Ptr) + Delta);
      SP[-2].U = (Ptr & 0xff00000000000000ull) | Off;
      --SP;
      break;
    }

    // ---- control flow -----------------------------------------------------
    case Op::Jump:
      PC = In.A;
      continue;
    case Op::JfI:
      if ((--SP)->I == 0) {
        PC = In.A;
        continue;
      }
      break;
    case Op::JfD:
      if ((--SP)->D == 0.0) {
        PC = In.A;
        continue;
      }
      break;
    case Op::JfP:
      if (ptrSpace((--SP)->U) == Space::Null) {
        PC = In.A;
        continue;
      }
      break;
    case Op::JtI:
      if ((--SP)->I != 0) {
        PC = In.A;
        continue;
      }
      break;
    case Op::JtD:
      if ((--SP)->D != 0.0) {
        PC = In.A;
        continue;
      }
      break;
    case Op::JtP:
      if (ptrSpace((--SP)->U) != Space::Null) {
        PC = In.A;
        continue;
      }
      break;

    // ---- instrumentation --------------------------------------------------
    case Op::CondSite: {
      double B = (--SP)->D;
      double A = (--SP)->D;
      bool Out = rt::cond(In.A, static_cast<CmpOp>(In.B), A, B);
      (SP++)->I = Out ? 1 : 0;
      break;
    }

    // ---- calls ------------------------------------------------------------
    case Op::Call: {
      const FunctionInfo &F = Fns[In.A];
      if (Frames.size() >= Opts.MaxCallDepth) {
        trap("call depth limit exceeded");
        return SP - Stack;
      }
      uint32_t Base = FrameTop;
      uint64_t Needed = static_cast<uint64_t>(Base) + F.FrameBytes;
      if (Needed > Opts.MaxStackBytes) {
        trap("interpreter stack overflow");
        return SP - Stack;
      }
      size_t NArgs = F.ParamTypes.size();
      if ((SP - Stack) - NArgs + F.MaxOperandDepth > kOpStackSlots) {
        trap("operand stack overflow");
        return SP - Stack;
      }
      if (FrameMem.size() < Needed) {
        FrameMem.resize(Needed, 0);
        FMem = FrameMem.data();
      }
      FrameTop = static_cast<uint32_t>(Needed);
      for (size_t P = NArgs; P-- > 0;) {
        Slot V = *--SP;
        uint8_t *M = FMem + Base + F.ParamOffsets[P];
        if (F.ParamTypes[P].isPointer()) {
          std::memcpy(M, &V.U, 8);
          continue;
        }
        switch (F.ParamTypes[P].Base) {
        case BaseType::Int: {
          int32_t W = static_cast<int32_t>(V.I);
          std::memcpy(M, &W, 4);
          break;
        }
        case BaseType::UInt: {
          uint32_t W = static_cast<uint32_t>(V.U);
          std::memcpy(M, &W, 4);
          break;
        }
        case BaseType::Double:
          std::memcpy(M, &V.D, 8);
          break;
        case BaseType::Void:
          break;
        }
      }
      Frames.push_back({Base, PC + 1});
      CurBase = Base;
      PC = F.Entry;
      continue;
    }
    case Op::CallB: {
      BuiltinId Id = static_cast<BuiltinId>(In.A);
      if (Id == BuiltinId::Scalbn) {
        int32_t N = static_cast<int32_t>(SP[-1].I);
        double A = SP[-2].D;
        --SP;
        SP[-1].D = runBuiltin(Id, A, 0.0, N);
      } else if (In.B == 2) {
        double B = SP[-1].D;
        double A = SP[-2].D;
        --SP;
        SP[-1].D = runBuiltin(Id, A, B, 0);
      } else {
        SP[-1].D = runBuiltin(Id, SP[-1].D, 0.0, 0);
      }
      break;
    }
    case Op::Ret: {
      Slot R = *--SP;
      CallFrame Fr = Frames.back();
      Frames.pop_back();
      FrameTop = Fr.Base;
      CurBase = Frames.empty() ? 0 : Frames.back().Base;
      PC = Fr.RetPC;
      *SP++ = R;
      continue;
    }
    case Op::RetV: {
      CallFrame Fr = Frames.back();
      Frames.pop_back();
      FrameTop = Fr.Base;
      CurBase = Frames.empty() ? 0 : Frames.back().Base;
      PC = Fr.RetPC;
      continue;
    }
    case Op::TrapOp:
      trap(Unit->TrapMessages[In.A].c_str());
      return SP - Stack;
    case Op::Halt:
      return SP - Stack;
    }
    ++PC;
  }
}

bool Vm::runGlobalInit() {
  Trapped = false;
  Message.clear();
  if (Unit->GlobalInitMaxDepth > OpStack.size()) {
    trap("operand stack overflow");
    return false;
  }
  StepsLeft = Opts.MaxSteps;
  Frames.clear();
  FrameMem.clear();
  FrameTop = 0;
  GlobalMem.assign(Unit->GlobalBytes, 0);
  exec(Unit->GlobalInitEntry, 0);
  return !Trapped;
}

double Vm::callEntry(unsigned FnIndex, const double *Args) {
  constexpr double NaN = std::numeric_limits<double>::quiet_NaN();
  Trapped = false;
  Message.clear();
  assert(FnIndex < Unit->Functions.size() && "bad function index");
  const FunctionInfo &F = Unit->Functions[FnIndex];
  StepsLeft = Opts.MaxSteps;
  Frames.clear();

  // Entry lowering (Sect. 5.3): pointer-parameter cells live at the
  // bottom of the frame arena, below the first frame, exactly like the
  // interpreter's.
  uint32_t CellBytes = 0;
  for (const Type &T : F.ParamTypes)
    if (T.isPointer())
      CellBytes += 8;
  FrameMem.assign(CellBytes, 0);
  FrameTop = CellBytes;

  size_t SP = 0;
  uint32_t NextCell = 0;
  for (size_t P = 0; P < F.ParamTypes.size(); ++P) {
    const Type T = F.ParamTypes[P];
    Slot S{}; // zero-initialized; silences -Wmaybe-uninitialized
    if (T.isPointer()) {
      if (T.pointee() != Type(BaseType::Double)) {
        Trapped = true;
        Message = "unsupported entry parameter type " + typeName(T);
        return NaN;
      }
      std::memcpy(FrameMem.data() + NextCell, &Args[P], 8);
      S.U = encodePtr(Space::Frame, NextCell);
      NextCell += 8;
    } else {
      switch (T.Base) {
      case BaseType::Double:
        S.D = Args[P];
        break;
      case BaseType::Int:
        S.I = truncToInt32(Args[P]);
        break;
      case BaseType::UInt:
        S.U = truncToUInt32(Args[P]);
        break;
      case BaseType::Void:
        Trapped = true;
        Message = "void entry parameter";
        return NaN;
      }
    }
    OpStack[SP++] = S;
  }

  size_t End = exec(F.Thunk, SP);
  if (Trapped)
    return NaN;
  if (F.ReturnType.isVoid())
    return 0.0;
  assert(End >= 1 && "entry call left no result");
  const Slot R = OpStack[End - 1];
  if (F.ReturnType.isPointer()) {
    trap("pointer used as a number");
    return NaN;
  }
  switch (F.ReturnType.Base) {
  case BaseType::Double:
    return R.D;
  case BaseType::Int:
    return static_cast<double>(R.I);
  case BaseType::UInt:
    return static_cast<double>(static_cast<uint32_t>(R.U));
  case BaseType::Void:
    break;
  }
  return 0.0;
}

double Vm::callEntry(const std::string &Name, const double *Args) {
  int Idx = Unit->functionIndex(Name);
  if (Idx < 0) {
    Trapped = true;
    Message = "unknown entry function '" + Name + "'";
    return std::numeric_limits<double>::quiet_NaN();
  }
  return callEntry(static_cast<unsigned>(Idx), Args);
}

Vm &bc::threadLocalVm(const std::shared_ptr<const CompiledUnit> &Unit,
                      const InterpOptions &Opts) {
  // One-entry fast path: a campaign worker hammers a single subject, so
  // the last-used pair hits on effectively every evaluation.
  thread_local const CompiledUnit *LastUnit = nullptr;
  thread_local Vm *LastVm = nullptr;
  if (LastUnit == Unit.get())
    return *LastVm;

  // Fallback map for threads interleaving several programs. Entries hold
  // shared ownership of their unit, so a cached raw key can never be
  // reused by a new allocation while it is in the cache (no ABA).
  thread_local std::unordered_map<const CompiledUnit *, std::unique_ptr<Vm>>
      Cache;
  auto It = Cache.find(Unit.get());
  if (It == Cache.end()) {
    // Before admitting a new unit, evict entries this cache is the last
    // owner of — their Programs are gone, so no caller can reach them
    // again. This bounds the cache for compile-and-run churn (fuzz loops,
    // repeated compileSourceProgram calls) at "units still alive" per
    // thread rather than "units ever seen".
    for (auto E = Cache.begin(); E != Cache.end();) {
      if (E->second->unitUseCount() == 1) {
        if (LastUnit == E->first) {
          LastUnit = nullptr;
          LastVm = nullptr;
        }
        E = Cache.erase(E);
      } else {
        ++E;
      }
    }
    It = Cache.emplace(Unit.get(), std::make_unique<Vm>(Unit, Opts)).first;
  }
  LastUnit = Unit.get();
  LastVm = It->second.get();
  return *LastVm;
}
