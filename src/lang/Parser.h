//===- Parser.h - Recursive-descent parser for the mini-C subset ----------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the C subset of Ast.h from source text. The parser is built on
/// the same lossless tokenizer the source-to-source Instrumenter uses, so
/// the two frontends agree byte-for-byte on what a token is. Parsing never
/// throws: problems are reported as diagnostics and the parser resynchronizes
/// at the next `;` or `}`, returning as much of the tree as it understood.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_LANG_PARSER_H
#define COVERME_LANG_PARSER_H

#include "lang/Ast.h"

#include <memory>
#include <string>
#include <vector>

namespace coverme {
namespace lang {

/// One parser or sema problem, attached to a source line.
struct Diagnostic {
  unsigned Line = 0;
  std::string Message;
};

/// Renders "line N: message" for error reports.
std::string formatDiagnostic(const Diagnostic &D);

/// Outcome of parsing a translation unit. The tree is always non-null;
/// check \c success() before trusting it.
struct ParseResult {
  std::unique_ptr<TranslationUnit> TU;
  std::vector<Diagnostic> Diags;

  bool success() const { return Diags.empty(); }
};

/// Parses \p Source. Preprocessor directives and comments are skipped by
/// the lexer; everything else must be inside the subset.
ParseResult parseTranslationUnit(const std::string &Source);

/// Parses a single expression (used by tests and the const-expression
/// folder). Returns null and fills \p Diags on failure.
ExprPtr parseExpression(const std::string &Source,
                        std::vector<Diagnostic> &Diags);

} // namespace lang
} // namespace coverme

#endif // COVERME_LANG_PARSER_H
