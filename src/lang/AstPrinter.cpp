//===- AstPrinter.cpp - Tree dumps and source re-rendering ----------------===//

#include "lang/AstPrinter.h"

#include <cinttypes>
#include <cstdio>

using namespace coverme;
using namespace coverme::lang;

const char *lang::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Rem:
    return "%";
  case BinaryOp::Shl:
    return "<<";
  case BinaryOp::Shr:
    return ">>";
  case BinaryOp::BitAnd:
    return "&";
  case BinaryOp::BitOr:
    return "|";
  case BinaryOp::BitXor:
    return "^";
  case BinaryOp::LT:
    return "<";
  case BinaryOp::LE:
    return "<=";
  case BinaryOp::GT:
    return ">";
  case BinaryOp::GE:
    return ">=";
  case BinaryOp::EQ:
    return "==";
  case BinaryOp::NE:
    return "!=";
  case BinaryOp::LogAnd:
    return "&&";
  case BinaryOp::LogOr:
    return "||";
  case BinaryOp::Comma:
    return ",";
  }
  assert(false && "unknown BinaryOp");
  return "?";
}

const char *lang::unaryOpSpelling(UnaryOp Op) {
  switch (Op) {
  case UnaryOp::Neg:
    return "-";
  case UnaryOp::LogNot:
    return "!";
  case UnaryOp::BitNot:
    return "~";
  case UnaryOp::Deref:
    return "*";
  case UnaryOp::AddrOf:
    return "&";
  case UnaryOp::PreInc:
    return "++";
  case UnaryOp::PreDec:
    return "--";
  }
  assert(false && "unknown UnaryOp");
  return "?";
}

const char *lang::assignOpSpelling(AssignOp Op) {
  switch (Op) {
  case AssignOp::Assign:
    return "=";
  case AssignOp::Add:
    return "+=";
  case AssignOp::Sub:
    return "-=";
  case AssignOp::Mul:
    return "*=";
  case AssignOp::Div:
    return "/=";
  case AssignOp::Rem:
    return "%=";
  case AssignOp::Shl:
    return "<<=";
  case AssignOp::Shr:
    return ">>=";
  case AssignOp::And:
    return "&=";
  case AssignOp::Or:
    return "|=";
  case AssignOp::Xor:
    return "^=";
  }
  assert(false && "unknown AssignOp");
  return "?";
}

namespace {

std::string formatDouble(double V) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%g", V);
  return Buffer;
}

std::string indentBy(unsigned Levels) {
  return std::string(2 * static_cast<size_t>(Levels), ' ');
}

/// One declarator with optional initializer, shared by the DeclStmt
/// renderer and renderUnit's globals (they must agree for the whole-unit
/// round-trip property to hold).
std::string renderDeclarator(const VarDecl &D) {
  std::string Text = typeName(D.DeclType) + " " + D.Name;
  if (D.isArray())
    Text += "[" + std::to_string(D.ArraySize) + "]";
  if (D.Init)
    Text += " = " + renderExpr(*D.Init);
  if (!D.InitList.empty()) {
    Text += " = {";
    for (size_t I = 0; I < D.InitList.size(); ++I) {
      if (I)
        Text += ", ";
      Text += renderExpr(*D.InitList[I]);
    }
    Text += "}";
  }
  return Text;
}

} // namespace

std::string lang::renderExpr(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::IntLiteral: {
    const auto &Lit = exprCast<IntLiteralExpr>(E);
    std::string Text = std::to_string(Lit.Value);
    if (Lit.IsUnsigned)
      Text += 'u';
    return Text;
  }
  case ExprKind::DoubleLiteral:
    return formatDouble(exprCast<DoubleLiteralExpr>(E).Value);
  case ExprKind::VarRef:
    return exprCast<VarRefExpr>(E).Name;
  case ExprKind::Unary: {
    const auto &U = exprCast<UnaryExpr>(E);
    return std::string(unaryOpSpelling(U.Op)) + "(" +
           renderExpr(*U.Operand) + ")";
  }
  case ExprKind::Postfix: {
    const auto &P = exprCast<PostfixExpr>(E);
    return "(" + renderExpr(*P.Operand) + ")" +
           (P.IsIncrement ? "++" : "--");
  }
  case ExprKind::Cast: {
    const auto &C = exprCast<CastExpr>(E);
    return "(" + typeName(C.Target) + ")(" + renderExpr(*C.Operand) + ")";
  }
  case ExprKind::Binary: {
    const auto &B = exprCast<BinaryExpr>(E);
    return "(" + renderExpr(*B.Lhs) + " " + binaryOpSpelling(B.Op) + " " +
           renderExpr(*B.Rhs) + ")";
  }
  case ExprKind::Ternary: {
    const auto &T = exprCast<TernaryExpr>(E);
    return "(" + renderExpr(*T.Cond) + " ? " + renderExpr(*T.TrueExpr) +
           " : " + renderExpr(*T.FalseExpr) + ")";
  }
  case ExprKind::Assign: {
    const auto &A = exprCast<AssignExpr>(E);
    return "(" + renderExpr(*A.Lhs) + " " + assignOpSpelling(A.Op) + " " +
           renderExpr(*A.Rhs) + ")";
  }
  case ExprKind::Call: {
    const auto &Call = exprCast<CallExpr>(E);
    std::string Text = Call.Name + "(";
    for (size_t I = 0; I < Call.Args.size(); ++I) {
      if (I)
        Text += ", ";
      Text += renderExpr(*Call.Args[I]);
    }
    return Text + ")";
  }
  case ExprKind::Index: {
    const auto &Idx = exprCast<IndexExpr>(E);
    return renderExpr(*Idx.Base) + "[" + renderExpr(*Idx.Index) + "]";
  }
  }
  assert(false && "unknown ExprKind");
  return "?";
}

std::string lang::renderStmt(const Stmt &S, unsigned Indent) {
  const std::string Pad = indentBy(Indent);
  switch (S.Kind) {
  case StmtKind::Expr:
    return Pad + renderExpr(*stmtCast<ExprStmt>(S).E) + ";\n";
  case StmtKind::Decl: {
    const auto &DS = stmtCast<DeclStmt>(S);
    std::string Text;
    for (const auto &D : DS.Decls)
      Text += Pad + renderDeclarator(*D) + ";\n";
    return Text;
  }
  case StmtKind::Block: {
    std::string Text = Pad + "{\n";
    for (const auto &Child : stmtCast<BlockStmt>(S).Body)
      Text += renderStmt(*Child, Indent + 1);
    return Text + Pad + "}\n";
  }
  case StmtKind::If: {
    const auto &If = stmtCast<IfStmt>(S);
    std::string Text = Pad + "if (" + renderExpr(*If.Cond) + ")\n" +
                       renderStmt(*If.Then, Indent + 1);
    if (If.Else)
      Text += Pad + "else\n" + renderStmt(*If.Else, Indent + 1);
    return Text;
  }
  case StmtKind::While: {
    const auto &W = stmtCast<WhileStmt>(S);
    return Pad + "while (" + renderExpr(*W.Cond) + ")\n" +
           renderStmt(*W.Body, Indent + 1);
  }
  case StmtKind::DoWhile: {
    const auto &D = stmtCast<DoWhileStmt>(S);
    return Pad + "do\n" + renderStmt(*D.Body, Indent + 1) + Pad +
           "while (" + renderExpr(*D.Cond) + ");\n";
  }
  case StmtKind::For: {
    const auto &F = stmtCast<ForStmt>(S);
    std::string Init;
    if (F.Init) {
      Init = renderStmt(*F.Init, 0);
      // Strip the trailing "\n" and keep the ';' the sub-render added.
      while (!Init.empty() && (Init.back() == '\n' || Init.back() == ' '))
        Init.pop_back();
    } else {
      Init = ";";
    }
    return Pad + "for (" + Init + " " +
           (F.Cond ? renderExpr(*F.Cond) : std::string()) + "; " +
           (F.Step ? renderExpr(*F.Step) : std::string()) + ")\n" +
           renderStmt(*F.Body, Indent + 1);
  }
  case StmtKind::Return: {
    const auto &R = stmtCast<ReturnStmt>(S);
    if (R.Value)
      return Pad + "return " + renderExpr(*R.Value) + ";\n";
    return Pad + "return;\n";
  }
  case StmtKind::Break:
    return Pad + "break;\n";
  case StmtKind::Continue:
    return Pad + "continue;\n";
  case StmtKind::Empty:
    return Pad + ";\n";
  }
  assert(false && "unknown StmtKind");
  return "";
}

std::string lang::renderUnit(const TranslationUnit &TU) {
  std::string Text;
  for (const auto &G : TU.Globals)
    Text += renderDeclarator(*G) + ";\n";
  for (const auto &F : TU.Functions) {
    if (!Text.empty())
      Text += "\n";
    Text += typeName(F->ReturnType) + " " + F->Name + "(";
    for (size_t I = 0; I < F->Params.size(); ++I) {
      if (I)
        Text += ", ";
      Text += typeName(F->Params[I]->DeclType) + " " + F->Params[I]->Name;
    }
    Text += ")\n" + renderStmt(*F->Body, 0);
  }
  return Text;
}

namespace {

/// The structural dump walker.
class Dumper {
public:
  std::string Text;

  void line(unsigned Indent, const std::string &S) {
    Text += indentBy(Indent) + S + "\n";
  }

  std::string typeSuffix(const Expr &E) {
    if (E.Ty.isVoid())
      return "";
    return " : " + typeName(E.Ty);
  }

  void dumpExpr(const Expr &E, unsigned Indent) {
    switch (E.Kind) {
    case ExprKind::IntLiteral: {
      const auto &Lit = exprCast<IntLiteralExpr>(E);
      line(Indent, "IntLiteral " + std::to_string(Lit.Value) +
                       (Lit.IsUnsigned ? "u" : "") + typeSuffix(E));
      return;
    }
    case ExprKind::DoubleLiteral:
      line(Indent, "DoubleLiteral " +
                       formatDouble(exprCast<DoubleLiteralExpr>(E).Value) +
                       typeSuffix(E));
      return;
    case ExprKind::VarRef:
      line(Indent, "VarRef " + exprCast<VarRefExpr>(E).Name + typeSuffix(E));
      return;
    case ExprKind::Unary: {
      const auto &U = exprCast<UnaryExpr>(E);
      line(Indent, std::string("Unary ") + unaryOpSpelling(U.Op) +
                       typeSuffix(E));
      dumpExpr(*U.Operand, Indent + 1);
      return;
    }
    case ExprKind::Postfix: {
      const auto &P = exprCast<PostfixExpr>(E);
      line(Indent, std::string("Postfix ") + (P.IsIncrement ? "++" : "--") +
                       typeSuffix(E));
      dumpExpr(*P.Operand, Indent + 1);
      return;
    }
    case ExprKind::Cast: {
      const auto &C = exprCast<CastExpr>(E);
      line(Indent, "Cast to " + typeName(C.Target));
      dumpExpr(*C.Operand, Indent + 1);
      return;
    }
    case ExprKind::Binary: {
      const auto &B = exprCast<BinaryExpr>(E);
      line(Indent, std::string("Binary ") + binaryOpSpelling(B.Op) +
                       typeSuffix(E));
      dumpExpr(*B.Lhs, Indent + 1);
      dumpExpr(*B.Rhs, Indent + 1);
      return;
    }
    case ExprKind::Ternary: {
      const auto &T = exprCast<TernaryExpr>(E);
      line(Indent, "Ternary" + typeSuffix(E));
      dumpExpr(*T.Cond, Indent + 1);
      dumpExpr(*T.TrueExpr, Indent + 1);
      dumpExpr(*T.FalseExpr, Indent + 1);
      return;
    }
    case ExprKind::Assign: {
      const auto &A = exprCast<AssignExpr>(E);
      line(Indent, std::string("Assign ") + assignOpSpelling(A.Op) +
                       typeSuffix(E));
      dumpExpr(*A.Lhs, Indent + 1);
      dumpExpr(*A.Rhs, Indent + 1);
      return;
    }
    case ExprKind::Call: {
      const auto &Call = exprCast<CallExpr>(E);
      line(Indent, "Call " + Call.Name +
                       (Call.Callee ? "" : " [builtin]") + typeSuffix(E));
      for (const auto &Arg : Call.Args)
        dumpExpr(*Arg, Indent + 1);
      return;
    }
    case ExprKind::Index: {
      const auto &Idx = exprCast<IndexExpr>(E);
      line(Indent, "Index" + typeSuffix(E));
      dumpExpr(*Idx.Base, Indent + 1);
      dumpExpr(*Idx.Index, Indent + 1);
      return;
    }
    }
    assert(false && "unknown ExprKind");
  }

  std::string siteSuffix(uint32_t Site) {
    if (Site == kNoSite)
      return "";
    return " [site " + std::to_string(Site) + "]";
  }

  void dumpStmt(const Stmt &S, unsigned Indent) {
    switch (S.Kind) {
    case StmtKind::Expr:
      line(Indent, "ExprStmt");
      dumpExpr(*stmtCast<ExprStmt>(S).E, Indent + 1);
      return;
    case StmtKind::Decl:
      for (const auto &D : stmtCast<DeclStmt>(S).Decls) {
        std::string Text = "VarDecl " + D->Name + " : " +
                           typeName(D->DeclType);
        if (D->isArray())
          Text += "[" + std::to_string(D->ArraySize) + "]";
        line(Indent, Text);
        if (D->Init)
          dumpExpr(*D->Init, Indent + 1);
        for (const auto &Elem : D->InitList)
          dumpExpr(*Elem, Indent + 1);
      }
      return;
    case StmtKind::Block:
      line(Indent, "Block");
      for (const auto &Child : stmtCast<BlockStmt>(S).Body)
        dumpStmt(*Child, Indent + 1);
      return;
    case StmtKind::If: {
      const auto &If = stmtCast<IfStmt>(S);
      line(Indent, "If" + siteSuffix(If.Site));
      dumpExpr(*If.Cond, Indent + 1);
      dumpStmt(*If.Then, Indent + 1);
      if (If.Else) {
        line(Indent, "Else");
        dumpStmt(*If.Else, Indent + 1);
      }
      return;
    }
    case StmtKind::While: {
      const auto &W = stmtCast<WhileStmt>(S);
      line(Indent, "While" + siteSuffix(W.Site));
      dumpExpr(*W.Cond, Indent + 1);
      dumpStmt(*W.Body, Indent + 1);
      return;
    }
    case StmtKind::DoWhile: {
      const auto &D = stmtCast<DoWhileStmt>(S);
      line(Indent, "DoWhile" + siteSuffix(D.Site));
      dumpStmt(*D.Body, Indent + 1);
      dumpExpr(*D.Cond, Indent + 1);
      return;
    }
    case StmtKind::For: {
      const auto &F = stmtCast<ForStmt>(S);
      line(Indent, "For" + siteSuffix(F.Site));
      if (F.Init)
        dumpStmt(*F.Init, Indent + 1);
      if (F.Cond)
        dumpExpr(*F.Cond, Indent + 1);
      if (F.Step)
        dumpExpr(*F.Step, Indent + 1);
      dumpStmt(*F.Body, Indent + 1);
      return;
    }
    case StmtKind::Return: {
      const auto &R = stmtCast<ReturnStmt>(S);
      line(Indent, "Return");
      if (R.Value)
        dumpExpr(*R.Value, Indent + 1);
      return;
    }
    case StmtKind::Break:
      line(Indent, "Break");
      return;
    case StmtKind::Continue:
      line(Indent, "Continue");
      return;
    case StmtKind::Empty:
      line(Indent, "Empty");
      return;
    }
    assert(false && "unknown StmtKind");
  }
};

} // namespace

std::string lang::dumpAst(const TranslationUnit &TU) {
  Dumper D;
  D.line(0, "TranslationUnit (" + std::to_string(TU.NumSites) + " sites, " +
                std::to_string(TU.GlobalBytes) + " global bytes)");
  for (const auto &G : TU.Globals) {
    std::string Text = "Global " + G->Name + " : " + typeName(G->DeclType);
    if (G->isArray())
      Text += "[" + std::to_string(G->ArraySize) + "]";
    D.line(1, Text);
    if (G->Init)
      D.dumpExpr(*G->Init, 2);
    for (const auto &Elem : G->InitList)
      D.dumpExpr(*Elem, 2);
  }
  for (const auto &F : TU.Functions) {
    std::string Header = "Function " + F->Name + " : " +
                         typeName(F->ReturnType) + " (";
    for (size_t I = 0; I < F->Params.size(); ++I) {
      if (I)
        Header += ", ";
      Header += typeName(F->Params[I]->DeclType) + " " + F->Params[I]->Name;
    }
    Header += ")";
    D.line(1, Header);
    D.dumpStmt(*F->Body, 2);
  }
  return D.Text;
}
