//===- Bytecode.h - Compiled form of the mini-C subset --------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiled execution tier's program representation: a flat, immutable
/// instruction stream plus a double constant pool, produced once per
/// analyzed TranslationUnit by lang/Compiler and executed by any number of
/// per-thread lang/Vm instances concurrently.
///
/// Design constraints, in order:
///
/// 1. *Observational equivalence with the tree-walker.* A VM run of FOO
///    must produce the bit-identical return value, fire the same rt::cond
///    hooks in the same order with the same operands, and trap (to NaN) in
///    the same situations as lang/Interp — the differential suite in
///    tests/VmDifferentialTest.cpp holds both tiers to this, across every
///    dispatch mode and with the superinstruction pass on or off.
/// 2. *Shared code, private state.* A CompiledUnit is never written after
///    compileUnit returns; all mutable state (operand stack, frame arena,
///    global arena copy, step budget) lives in the Vm, so VM-backed
///    Programs set ThreadSafeBody and the CampaignEngine shards them.
/// 3. *Speed.* The mini-C subset is statically typed, so every instruction
///    is typed at compile time and the VM's value slots are untagged 8-byte
///    unions — no runtime type dispatch, no per-node allocation, and fused
///    unchecked frame/global accesses for the Sema-laid-out variables that
///    dominate Fdlibm code. On top of that, the compiler's peephole pass
///    (Compiler.cpp) collapses the measured-hot instruction pairs/triples
///    into superinstructions, and the VM dispatches with computed-goto
///    direct threading where the toolchain supports it.
///
/// Pointers use the same encoding as the interpreter's arenas: an address
/// space tag in the top byte (0 null, 1 global, 2 frame) over a 32-bit
/// byte offset, so word-twiddling like `*(1 + (int *)&x)` resolves to the
/// identical bytes in both tiers.
///
/// Step budgeting is block-granular: every instruction carries the step
/// cost of the original (unfused) sequence it stands for, and
/// CompiledUnit::BlockCost[PC] pre-sums the costs of the straight-line run
/// from PC through its terminating control transfer. The VM charges the
/// budget once per basic block (at entry, jumps, calls and returns) rather
/// than once per instruction; because fused instructions carry their
/// original cost, the budget trajectory — and therefore the exhaustion
/// point — is identical across fused/unfused streams and both dispatch
/// modes.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_LANG_BYTECODE_H
#define COVERME_LANG_BYTECODE_H

#include "lang/Ast.h"

#include <cstdint>
#include <string>
#include <vector>

namespace coverme {
namespace lang {
namespace bc {

/// One untagged VM value slot. The executing instruction knows which field
/// is live: canonical int32 values are sign-extended into I, canonical
/// uint32 values zero-extended into U, doubles live in D, and pointers are
/// space/offset-encoded in U (see encodePtr below).
union Slot {
  double D;
  int64_t I;
  uint64_t U;
};

/// Address spaces of encoded pointers; numerically identical to the
/// interpreter's arenas so both tiers trap on the same accesses.
enum class Space : uint8_t {
  Null = 0,
  Global = 1,
  Frame = 2,
};

inline uint64_t encodePtr(Space S, uint32_t Offset) {
  return (static_cast<uint64_t>(S) << 56) | Offset;
}
inline Space ptrSpace(uint64_t Bits) {
  return static_cast<Space>(Bits >> 56);
}
inline uint32_t ptrOffset(uint64_t Bits) { return static_cast<uint32_t>(Bits); }

/// The full opcode list as an X-macro, so the Op enum, the computed-goto
/// label table in Vm.cpp, and the disassembler's name table are generated
/// from one source and can never drift out of sync. Suffix convention:
/// D double, I canonical int32, U canonical uint32, P encoded pointer,
/// 32 "both integer types". The block after Halt holds the peephole pass's
/// superinstructions (see Compiler.cpp for the patterns they replace).
#define COVERME_VM_OPCODES(X)                                                  \
  /* constants */                                                              \
  X(ConstD) /* push DoublePool[A] */                                           \
  X(ConstI) /* push int32(A), sign-extended */                                 \
  X(ConstU) /* push uint32(A), zero-extended */                                \
  /* operand-stack shuffling */                                                \
  X(Pop)                                                                       \
  X(Dup)  /* [x] -> [x x] */                                                   \
  X(Swap) /* [x y] -> [y x] */                                                 \
  X(Rot)  /* [x y z] -> [y z x] */                                             \
  /* addresses */                                                              \
  X(AddrG) /* push global pointer at byte offset A */                          \
  X(AddrF) /* push frame pointer at FrameBase + A */                           \
  /* checked accesses through a pointer on the stack */                        \
  X(LoadI) /* pop ptr, push sign-extended int32 at ptr */                      \
  X(LoadU)                                                                     \
  X(LoadD)                                                                     \
  X(LoadP)                                                                     \
  X(StoreI) /* pop value, pop ptr, store; B != 0: push the value back */       \
  X(StoreU)                                                                    \
  X(StoreD)                                                                    \
  X(StoreP)                                                                    \
  /* fused unchecked accesses (Sema-laid-out variables) */                     \
  X(LdFI) /* push frame var at offset A (always within FrameBytes) */          \
  X(LdFU)                                                                      \
  X(LdFD)                                                                      \
  X(LdFP)                                                                      \
  X(LdGI) /* push global var at offset A (always within GlobalBytes) */        \
  X(LdGU)                                                                      \
  X(LdGD)                                                                      \
  X(LdGP)                                                                      \
  X(StFI) /* pop value, store to frame offset A; B != 0: push it back */       \
  X(StFU)                                                                      \
  X(StFD)                                                                      \
  X(StFP)                                                                      \
  X(StGI)                                                                      \
  X(StGU)                                                                      \
  X(StGD)                                                                      \
  X(StGP)                                                                      \
  X(ZeroF) /* zero frame bytes [A, A+B) — local array bring-up */              \
  X(ZeroG) /* zero global bytes [A, A+B) */                                    \
  /* double arithmetic */                                                      \
  X(AddD)                                                                      \
  X(SubD)                                                                      \
  X(MulD)                                                                      \
  X(DivD) /* IEEE: x/0 yields inf/NaN, never traps */                          \
  X(NegD)                                                                      \
  /* int32 arithmetic (wrapping; division traps on zero) */                    \
  X(AddI)                                                                      \
  X(SubI)                                                                      \
  X(MulI)                                                                      \
  X(DivI) /* INT_MIN / -1 wraps rather than UB, as the interpreter does */     \
  X(RemI)                                                                      \
  X(NegI)                                                                      \
  X(AddU)                                                                      \
  X(SubU)                                                                      \
  X(MulU)                                                                      \
  X(DivU)                                                                      \
  X(RemU)                                                                      \
  X(NegU)                                                                      \
  X(ShlI) /* pop uint32 amount (masked & 31), pop int32, shift */              \
  X(ShrI) /* arithmetic shift, as Fdlibm assumes */                            \
  X(ShlU)                                                                      \
  X(ShrU)                                                                      \
  X(And32) /* pop two, push zero-extended (a & b) over the low 32 bits */      \
  X(Or32)                                                                      \
  X(Xor32)                                                                     \
  X(NotI) /* bitwise complement, canonical int */                              \
  X(NotU)                                                                      \
  /* truthiness */                                                             \
  X(BoolI) /* [v] -> [v != 0] as int 0/1 */                                    \
  X(BoolD)                                                                     \
  X(BoolP) /* non-null test on the space tag, matching Interp's truthy() */    \
  X(LogNotI)                                                                   \
  X(LogNotD)                                                                   \
  X(LogNotP)                                                                   \
  /* conversions (slot renormalization) */                                     \
  X(I2D)                                                                       \
  X(U2D)                                                                       \
  X(D2I) /* saturating truncation, NaN -> 0 (Interp's truncToInt32) */         \
  X(D2U)                                                                       \
  X(I2U)                                                                       \
  X(U2I)                                                                       \
  X(I2P) /* 0 becomes the null pointer; anything else traps */                 \
  /* comparisons: A = CmpOp; pop R, pop L, push int 0/1 */                     \
  X(CmpD)                                                                      \
  X(CmpI)                                                                      \
  X(CmpU)                                                                      \
  X(CmpP)     /* full encoded-pointer compare, identical to Interp */          \
  X(PNullCmp) /* pop ptr; push (A != 0 ? ptr is null : ptr is non-null) */     \
  /* pointer arithmetic */                                                     \
  X(PtrAdd) /* pop int32 index, pop ptr; offset += index * A (B: -=) */        \
  /* control flow: A = absolute instruction index */                           \
  X(Jump)                                                                      \
  X(JfI) /* pop, jump when falsy */                                            \
  X(JfD)                                                                       \
  X(JfP)                                                                       \
  X(JtI) /* pop, jump when truthy */                                           \
  X(JtD)                                                                       \
  X(JtP)                                                                       \
  /* instrumentation: pop b, pop a (doubles per Sect. 5.3), push              \
     rt::cond(A, CmpOp(B), a, b) as int 0/1 */                                 \
  X(CondSite)                                                                  \
  /* calls */                                                                  \
  X(Call)  /* A = function index; converted args on the operand stack */       \
  X(CallB) /* A = BuiltinId, B = arity; double args (int for scalbn) */        \
  X(RetV)  /* return from a void function */                                   \
  X(Ret)   /* pop the (already converted) return slot, return it */            \
  X(TrapOp) /* unconditional trap; A = index into TrapMessages */              \
  X(Halt)   /* entry-thunk sentinel; stops the dispatch loop */                \
  /* ---- superinstructions (Compiler.cpp peephole pass) ------------------ */ \
  /* two frame loads + double arithmetic: push F[A] op F[B] */                 \
  X(LdF2AddD)                                                                  \
  X(LdF2SubD)                                                                  \
  X(LdF2MulD)                                                                  \
  X(LdF2DivD)                                                                  \
  /* frame-load RHS + double arithmetic: top = top op F[A] */                  \
  X(LdFAddD)                                                                   \
  X(LdFSubD)                                                                   \
  X(LdFMulD)                                                                   \
  X(LdFDivD)                                                                   \
  /* global-load RHS + double arithmetic: top = top op G[A] */                 \
  X(LdGAddD)                                                                   \
  X(LdGSubD)                                                                   \
  X(LdGMulD)                                                                   \
  X(LdGDivD)                                                                   \
  /* constant RHS + double arithmetic: top = top op DoublePool[A] */           \
  X(ConstAddD)                                                                 \
  X(ConstSubD)                                                                 \
  X(ConstMulD)                                                                 \
  X(ConstDivD)                                                                 \
  /* integer frame load widened to double (instrumented compares) */           \
  X(LdFI2D) /* push (double)(int32)F[A] */                                     \
  X(LdFU2D) /* push (double)(uint32)F[A] */                                    \
  /* instrumented compare-then-branch: pop b, pop a, fire                     \
     rt::cond(B >> 3, CmpOp(B & 7), a, b), jump to A on false/true */          \
  X(CondSiteJf)                                                                \
  X(CondSiteJt)                                                                \
  /* plain double compare-then-branch: pop b, pop a, jump to A when           \
     (a CmpOp(B) b) is false/true */                                           \
  X(CmpDJf)                                                                    \
  X(CmpDJt)

/// Instruction opcodes, generated from COVERME_VM_OPCODES.
enum class Op : uint8_t {
#define COVERME_VM_OP_ENUM(Name) Name,
  COVERME_VM_OPCODES(COVERME_VM_OP_ENUM)
#undef COVERME_VM_OP_ENUM
};

/// Number of opcodes (the computed-goto label table must cover them all).
inline constexpr size_t NumOpcodes = 0
#define COVERME_VM_OP_COUNT(Name) +1
    COVERME_VM_OPCODES(COVERME_VM_OP_COUNT)
#undef COVERME_VM_OP_COUNT
    ;

/// Mnemonic of \p O, for the disassembler and diagnostics.
const char *opName(Op O);

/// True when \p O ends a basic block: the VM's block-granular budget
/// accounting charges the next block at the transfer these perform.
inline bool isBlockTerminator(Op O) {
  switch (O) {
  case Op::Jump:
  case Op::JfI:
  case Op::JfD:
  case Op::JfP:
  case Op::JtI:
  case Op::JtD:
  case Op::JtP:
  case Op::CondSiteJf:
  case Op::CondSiteJt:
  case Op::CmpDJf:
  case Op::CmpDJt:
  case Op::Call:
  case Op::Ret:
  case Op::RetV:
  case Op::TrapOp:
  case Op::Halt:
    return true;
  default:
    return false;
  }
}

/// libm builtins, resolved at compile time from Sema-validated call names.
/// Mirrors Interp's callBuiltin table exactly (ldexp aliases scalbn).
enum class BuiltinId : uint32_t {
  Fabs,
  Sqrt,
  Sin,
  Cos,
  Tan,
  Asin,
  Acos,
  Atan,
  Exp,
  Log,
  Log10,
  Log1p,
  Expm1,
  Floor,
  Ceil,
  Rint,
  Trunc,
  Cbrt,
  Sinh,
  Cosh,
  Tanh,
  J0,
  J1,
  Y0,
  Y1,
  Pow,
  Fmod,
  Atan2,
  Hypot,
  Copysign,
  Fmin,
  Fmax,
  Scalbn,
};

/// One instruction: opcode, its step cost, and two immediate operands
/// (jump targets are absolute indices into CompiledUnit::Code).
///
/// Cost is the number of budget units the instruction accounts for — 1
/// for every compiler-emitted instruction, the size of the replaced
/// sequence for a peephole superinstruction — so fused and unfused
/// streams drain MaxSteps identically.
struct Insn {
  Op Code;
  uint8_t Cost = 1;
  uint32_t A = 0;
  uint32_t B = 0;
};

/// Everything the VM needs to call one compiled function.
struct FunctionInfo {
  std::string Name;
  Type ReturnType;
  uint32_t Entry = 0;      ///< First instruction of the body.
  uint32_t Thunk = 0;      ///< Two-instruction `Call; Halt` entry stub.
  uint32_t FrameBytes = 0; ///< Sema's frame layout (params + locals).
  /// Operand slots this function's own code may stack up (excluding
  /// callees, which reserve their own at their Call site).
  uint32_t MaxOperandDepth = 0;
  std::vector<Type> ParamTypes;
  std::vector<uint32_t> ParamOffsets; ///< Frame byte offsets, from Sema.
  /// No instruction reachable from Entry (transitively through Calls)
  /// writes global storage, so the VM's wide batch lane — whose four rows
  /// share one read-only global image — may execute this function. Set by
  /// the compiler's wide-safety analysis; the wide lane additionally
  /// requires the unit-level WritesGlobals escape bit to be clear.
  bool WideSafe = false;
};

/// What the compiler's optimization passes did to this unit; surfaced by
/// bench_interp --json and the disassembler header.
struct OptStats {
  bool FusionEnabled = false;
  uint32_t InsnsBeforeFusion = 0; ///< Stream length before the peephole pass.
  uint32_t InsnsAfterFusion = 0;  ///< ... and after (equal when disabled).
  uint32_t Superinsns = 0;        ///< Fused instructions emitted.
  uint32_t PoolRequests = 0;      ///< dconst calls (literal occurrences).
  /// Final DoublePool slots: bit-pattern-deduplicated literals, plus any
  /// constants the fusion pass folded (ConstI;I2D promotions).
  uint32_t PoolSize = 0;
  /// Wide-safety analysis outcome: how many functions the SIMD batch lane
  /// may execute vs. how many touch global storage somewhere in their
  /// reachable call graph.
  uint32_t WideSafeFunctions = 0;
  uint32_t WideUnsafeFunctions = 0;
};

/// The immutable compiled unit. Safe to share across threads; every Vm
/// holds a shared_ptr so the code outlives any Program body closure.
struct CompiledUnit {
  std::vector<Insn> Code;
  std::vector<double> DoublePool;
  std::vector<FunctionInfo> Functions;
  std::vector<std::string> TrapMessages;
  /// BlockCost[PC] = sum of Insn::Cost from PC through the first block
  /// terminator at or after PC (inclusive). The VM charges the step
  /// budget against this once per basic block; meaningful at block heads,
  /// defined for every PC. Rebuilt by Compiler after the peephole pass.
  std::vector<uint32_t> BlockCost;
  /// Global arena contents after running every file-scope initializer in
  /// declaration order (computed once at compile time); each Vm starts
  /// from a copy, mirroring the interpreter's per-instance global arena.
  std::vector<uint8_t> GlobalImage;
  uint32_t GlobalBytes = 0; ///< Sema's global arena size (= image size).
  unsigned NumSites = 0;
  uint32_t GlobalInitEntry = 0; ///< Init routine (ends in Halt).
  uint32_t GlobalInitMaxDepth = 0;
  OptStats Stats;

  /// True when some function body may write global storage — directly, or
  /// by letting a global's address escape (see Compiler::noteGlobalEscape).
  /// Each Vm holds a *private copy* of the global arena, so such programs
  /// are not thread-count invariant under campaign sharding; SourceProgram
  /// clears ThreadSafeBody for them and the engine clamps to one thread.
  /// Read-only global access (the whole Fdlibm suite) does not set this.
  bool WritesGlobals = false;

  /// Index of the function named \p Name, or -1.
  int functionIndex(const std::string &Name) const {
    for (size_t I = 0; I < Functions.size(); ++I)
      if (Functions[I].Name == Name)
        return static_cast<int>(I);
    return -1;
  }
};

} // namespace bc
} // namespace lang
} // namespace coverme

#endif // COVERME_LANG_BYTECODE_H
