//===- Bytecode.h - Compiled form of the mini-C subset --------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiled execution tier's program representation: a flat, immutable
/// instruction stream plus a double constant pool, produced once per
/// analyzed TranslationUnit by lang/Compiler and executed by any number of
/// per-thread lang/Vm instances concurrently.
///
/// Design constraints, in order:
///
/// 1. *Observational equivalence with the tree-walker.* A VM run of FOO
///    must produce the bit-identical return value, fire the same rt::cond
///    hooks in the same order with the same operands, and trap (to NaN) in
///    the same situations as lang/Interp — the differential suite in
///    tests/VmDifferentialTest.cpp holds both tiers to this.
/// 2. *Shared code, private state.* A CompiledUnit is never written after
///    compileUnit returns; all mutable state (operand stack, frame arena,
///    global arena copy, step budget) lives in the Vm, so VM-backed
///    Programs set ThreadSafeBody and the CampaignEngine shards them.
/// 3. *Speed.* The mini-C subset is statically typed, so every instruction
///    is typed at compile time and the VM's value slots are untagged 8-byte
///    unions — no runtime type dispatch, no per-node allocation, and fused
///    unchecked frame/global accesses for the Sema-laid-out variables that
///    dominate Fdlibm code.
///
/// Pointers use the same encoding as the interpreter's arenas: an address
/// space tag in the top byte (0 null, 1 global, 2 frame) over a 32-bit
/// byte offset, so word-twiddling like `*(1 + (int *)&x)` resolves to the
/// identical bytes in both tiers.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_LANG_BYTECODE_H
#define COVERME_LANG_BYTECODE_H

#include "lang/Ast.h"

#include <cstdint>
#include <string>
#include <vector>

namespace coverme {
namespace lang {
namespace bc {

/// One untagged VM value slot. The executing instruction knows which field
/// is live: canonical int32 values are sign-extended into I, canonical
/// uint32 values zero-extended into U, doubles live in D, and pointers are
/// space/offset-encoded in U (see encodePtr below).
union Slot {
  double D;
  int64_t I;
  uint64_t U;
};

/// Address spaces of encoded pointers; numerically identical to the
/// interpreter's arenas so both tiers trap on the same accesses.
enum class Space : uint8_t {
  Null = 0,
  Global = 1,
  Frame = 2,
};

inline uint64_t encodePtr(Space S, uint32_t Offset) {
  return (static_cast<uint64_t>(S) << 56) | Offset;
}
inline Space ptrSpace(uint64_t Bits) {
  return static_cast<Space>(Bits >> 56);
}
inline uint32_t ptrOffset(uint64_t Bits) { return static_cast<uint32_t>(Bits); }

/// Instruction opcodes. Suffix convention: D double, I canonical int32,
/// U canonical uint32, P encoded pointer, 32 "both integer types" (the
/// result is re-canonicalized by a following U2I when the static result
/// type is int).
enum class Op : uint8_t {
  // ---- constants ----------------------------------------------------------
  ConstD, ///< push DoublePool[A]
  ConstI, ///< push int32(A), sign-extended
  ConstU, ///< push uint32(A), zero-extended
  // ---- operand-stack shuffling -------------------------------------------
  Pop,
  Dup,  ///< [x] -> [x x]
  Swap, ///< [x y] -> [y x]
  Rot,  ///< [x y z] -> [y z x] (bottom of the top three to the top)
  // ---- addresses ----------------------------------------------------------
  AddrG, ///< push global pointer at byte offset A
  AddrF, ///< push frame pointer at FrameBase + A
  // ---- checked accesses through a pointer on the stack -------------------
  LoadI, ///< pop ptr, push sign-extended int32 at ptr
  LoadU,
  LoadD,
  LoadP,
  StoreI, ///< pop value, pop ptr, store; B != 0: push the value back
  StoreU,
  StoreD,
  StoreP,
  // ---- fused unchecked accesses (Sema-laid-out variables) ----------------
  LdFI, ///< push frame var at offset A (always within FrameBytes)
  LdFU,
  LdFD,
  LdFP,
  LdGI, ///< push global var at offset A (always within GlobalBytes)
  LdGU,
  LdGD,
  LdGP,
  StFI, ///< pop value, store to frame offset A; B != 0: push it back
  StFU,
  StFD,
  StFP,
  StGI,
  StGU,
  StGD,
  StGP,
  ZeroF, ///< zero frame bytes [A, A+B) — local array bring-up
  ZeroG, ///< zero global bytes [A, A+B)
  // ---- double arithmetic --------------------------------------------------
  AddD,
  SubD,
  MulD,
  DivD, ///< IEEE: x/0 yields inf/NaN, never traps
  NegD,
  // ---- int32 arithmetic (wrapping; division traps on zero) ---------------
  AddI,
  SubI,
  MulI,
  DivI, ///< INT_MIN / -1 wraps rather than UB, as the interpreter does
  RemI,
  NegI,
  AddU,
  SubU,
  MulU,
  DivU,
  RemU,
  NegU,
  ShlI, ///< pop uint32 amount (masked & 31), pop int32, shift
  ShrI, ///< arithmetic shift, as Fdlibm assumes
  ShlU,
  ShrU,
  And32, ///< pop two, push zero-extended (a & b) over the low 32 bits
  Or32,
  Xor32,
  NotI, ///< bitwise complement, canonical int
  NotU,
  // ---- truthiness ---------------------------------------------------------
  BoolI, ///< [v] -> [v != 0] as int 0/1
  BoolD,
  BoolP, ///< non-null test on the space tag, matching Interp's truthy()
  LogNotI,
  LogNotD,
  LogNotP,
  // ---- conversions (slot renormalization) --------------------------------
  I2D,
  U2D,
  D2I, ///< saturating truncation, NaN -> 0 (Interp's truncToInt32)
  D2U,
  I2U,
  U2I,
  I2P, ///< 0 becomes the null pointer; anything else traps
  // ---- comparisons: A = CmpOp; pop R, pop L, push int 0/1 ----------------
  CmpD,
  CmpI,
  CmpU,
  CmpP,     ///< full encoded-pointer compare, identical to Interp
  PNullCmp, ///< pop ptr; push (A != 0 ? ptr is null : ptr is non-null)
  // ---- pointer arithmetic -------------------------------------------------
  PtrAdd, ///< pop int32 index, pop ptr; offset += index * A (B != 0: -=)
  // ---- control flow: A = absolute instruction index ----------------------
  Jump,
  JfI, ///< pop, jump when falsy
  JfD,
  JfP,
  JtI, ///< pop, jump when truthy
  JtD,
  JtP,
  // ---- instrumentation ----------------------------------------------------
  /// The compiled form of the paper's pen injection: pop b, pop a (both
  /// already promoted to double per Sect. 5.3), push
  /// rt::cond(A, CmpOp(B), a, b) as int 0/1. Sites fire in the same order
  /// with the same ids as the tree-walker because both read the numbering
  /// Sema stamped on the statement nodes.
  CondSite,
  // ---- calls --------------------------------------------------------------
  Call,  ///< A = function index; converted args on the operand stack
  CallB, ///< A = BuiltinId, B = arity; double args (int for scalbn's 2nd)
  RetV,  ///< return from a void function
  Ret,   ///< pop the (already converted) return slot, return it
  TrapOp, ///< unconditional trap; A = index into TrapMessages
  Halt,   ///< entry-thunk sentinel; stops the dispatch loop
};

/// libm builtins, resolved at compile time from Sema-validated call names.
/// Mirrors Interp's callBuiltin table exactly (ldexp aliases scalbn).
enum class BuiltinId : uint32_t {
  Fabs,
  Sqrt,
  Sin,
  Cos,
  Tan,
  Asin,
  Acos,
  Atan,
  Exp,
  Log,
  Log10,
  Log1p,
  Expm1,
  Floor,
  Ceil,
  Rint,
  Trunc,
  Cbrt,
  Sinh,
  Cosh,
  Tanh,
  J0,
  J1,
  Y0,
  Y1,
  Pow,
  Fmod,
  Atan2,
  Hypot,
  Copysign,
  Fmin,
  Fmax,
  Scalbn,
};

/// One instruction: opcode plus two immediate operands (jump targets are
/// absolute indices into CompiledUnit::Code).
struct Insn {
  Op Code;
  uint32_t A = 0;
  uint32_t B = 0;
};

/// Everything the VM needs to call one compiled function.
struct FunctionInfo {
  std::string Name;
  Type ReturnType;
  uint32_t Entry = 0;      ///< First instruction of the body.
  uint32_t Thunk = 0;      ///< Two-instruction `Call; Halt` entry stub.
  uint32_t FrameBytes = 0; ///< Sema's frame layout (params + locals).
  /// Operand slots this function's own code may stack up (excluding
  /// callees, which reserve their own at their Call site).
  uint32_t MaxOperandDepth = 0;
  std::vector<Type> ParamTypes;
  std::vector<uint32_t> ParamOffsets; ///< Frame byte offsets, from Sema.
};

/// The immutable compiled unit. Safe to share across threads; every Vm
/// holds a shared_ptr so the code outlives any Program body closure.
struct CompiledUnit {
  std::vector<Insn> Code;
  std::vector<double> DoublePool;
  std::vector<FunctionInfo> Functions;
  std::vector<std::string> TrapMessages;
  /// Global arena contents after running every file-scope initializer in
  /// declaration order (computed once at compile time); each Vm starts
  /// from a copy, mirroring the interpreter's per-instance global arena.
  std::vector<uint8_t> GlobalImage;
  uint32_t GlobalBytes = 0; ///< Sema's global arena size (= image size).
  unsigned NumSites = 0;
  uint32_t GlobalInitEntry = 0; ///< Init routine (ends in Halt).
  uint32_t GlobalInitMaxDepth = 0;

  /// True when some function body may write global storage — directly, or
  /// by letting a global's address escape (see Compiler::noteGlobalEscape).
  /// Each Vm holds a *private copy* of the global arena, so such programs
  /// are not thread-count invariant under campaign sharding; SourceProgram
  /// clears ThreadSafeBody for them and the engine clamps to one thread.
  /// Read-only global access (the whole Fdlibm suite) does not set this.
  bool WritesGlobals = false;

  /// Index of the function named \p Name, or -1.
  int functionIndex(const std::string &Name) const {
    for (size_t I = 0; I < Functions.size(); ++I)
      if (Functions[I].Name == Name)
        return static_cast<int>(I);
    return -1;
  }
};

} // namespace bc
} // namespace lang
} // namespace coverme

#endif // COVERME_LANG_BYTECODE_H
