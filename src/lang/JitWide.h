//===- JitWide.h - 4-lane AVX2 fragment family for the template JIT -------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wide half of the copy-and-patch JIT: a second fragment family that
/// executes four probe rows per instruction over the SIMD batch lane's
/// lane-interleaved frame arena (lang/VmWide.h), composing PR 6's native
/// fragments with PR 7's wide execution model. Double arithmetic and the
/// fused superinstructions lower to 256-bit VEX code (`vaddpd`-shaped, FMA
/// contraction impossible by construction — the emitter only ever produces
/// the separate mul/add shapes BranchDistance.cpp pins); integer, pointer
/// and builtin operations run as per-lane scalar fallout; and the FOO_R
/// `pen` fast path is vectorized (packed compare + movemask outcome
/// recording, the Def-4.2 penalty evaluated in vector registers, context
/// trace/r materialized once at batch end from the recorded log).
///
/// Divergence reuses the wide lane's retirement protocol exactly: at a
/// branch, the leader (lowest active) lane's direction is consensus;
/// disagreeing lanes drop out of the active mask, as do lanes that trap
/// (per-lane) and whole groups whose budget charge fails. Retired lanes
/// re-run scalar from scratch through the scalar JIT fragment (then the
/// interpreter, per the existing chain), so every row's bits, branch
/// trace, trap string and exhaustion point stay scalar-identical by
/// construction.
///
/// Builds without COVERME_JIT + COVERME_VM_SIMD on x86-64 POSIX keep this
/// API; emitWideFragment then refuses every function and the batch
/// dispatch falls back down the chain (VmWide, scalar JIT rows, scalar
/// VM).
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_LANG_JITWIDE_H
#define COVERME_LANG_JITWIDE_H

#include "lang/Bytecode.h"
#include "lang/JitAsm.h"

#include <cstdint>

namespace coverme {
namespace lang {
namespace bc {

/// The mutable state one wide fragment executes against, lent by the
/// owning Vm for the duration of one 4-row probe group. Field offsets are
/// part of the fragment ABI (the emitter hard-codes them); keep in sync
/// with JitWide.cpp.
struct JitWideFrame {
  /// Wide frame arena base (lane-interleaved WideSlot granules; must be
  /// 32-byte aligned — it is WideState::Frame's storage).
  uint8_t *FW;           // offset 0
  uint8_t *GMem;         // offset 8: the Vm's private global arena copy.
  const double *Pool;    // offset 16: CompiledUnit::DoublePool.
  uint64_t StepsLeft;    // offset 24: in remaining budget / out after run.
  /// In: the full lane mask. Out: the lanes that completed wide (0 when
  /// the whole group retired — budget, trap, log overflow).
  uint64_t Active;       // offset 32
  uint64_t SavedRsp;     // offset 40: prologue spill for the 32-alignment.
  uint64_t ResultBits[4]; // offset 48: raw Ret slot bits per lane.
  /// In: per-site saturation snapshot (2 bits: TrueArm | FalseArm << 1),
  /// or null when no context is installed — cond sites then skip the pen
  /// block entirely (the WideCtxNone shape).
  const uint8_t *SatFlags; // offset 80
  double Epsilon;          // offset 88: the context's Def-4.2 epsilon.
  /// 32-byte-aligned 4-lane running r (a wide::WideSlot).
  void *RWide;             // offset 96
  /// wide::WideCondRec array the pen block appends outcome records to.
  void *CondLog;           // offset 104
  uint64_t CondCount;      // offset 112: in 0 / out records written.
  uint64_t CondCap;        // offset 120: record capacity; overflow retires
                           // the whole group (rows re-run scalar).
};

/// Entry point of one compiled wide fragment.
using JitWideEntryFn = void (*)(JitWideFrame *);

namespace wjit {

/// True when this build can emit wide fragments at all (COVERME_JIT and
/// COVERME_VM_SIMD on an x86-64 POSIX toolchain). Host AVX2 support is a
/// separate, runtime question answered by Vm::simdAvailable().
bool wideEmitterAvailable();

/// Emits the 4-lane fragment for \p U's function \p FnIndex into \p A.
/// False — with the buffer rolled back by the caller — when the function
/// has no wide lowering (see jit::wideFragRejection) or the build has no
/// wide emitter.
bool emitWideFragment(const CompiledUnit &U, unsigned FnIndex, jit::Asm &A);

} // namespace wjit
} // namespace bc
} // namespace lang
} // namespace coverme

#endif // COVERME_LANG_JITWIDE_H
