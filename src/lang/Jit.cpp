//===- Jit.cpp - x86-64 template JIT over the bytecode tier ---------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// A copy-and-patch style template JIT: every bytecode instruction lowers to
// a fixed native fragment stitched in stream order, with operand-stack
// slots pinned to [rsp + depth*8] at the statically known depth of each PC.
// There is no register allocator and no IR — the price of that simplicity
// is paid back by the complete absence of dispatch overhead, which is where
// the VM spends most of its time on Fdlibm-shaped code.
//
// Bit-identity with the interpreter tiers is the design constraint that
// decides every choice below:
//  * Step budgeting replays the VM's block-granular schedule exactly: the
//    pre-summed CompiledUnit::BlockCost of the target block is charged on
//    the same control-flow edges (fragment entry, every jump edge, the
//    return-to-thunk edge), trapping *before* the block runs.
//  * libm builtins and the saturating double->int conversions call the very
//    routines Vm.cpp compiles (bc::detail::*), so no libm or rounding drift
//    is possible between tiers.
//  * rt::cond fires through a C bridge at the same sites in the same order
//    with the same operands.
//  * Double compares use ucomisd predicate combinations that reproduce C
//    comparison semantics including NaN (unordered) in every branch.
//  * Traps exit natively through JitFrame::TrapCode; Vm::jitProbe maps the
//    codes back to the identical trap strings.
//
// Functions the emitter cannot prove safe — anything containing Op::Call
// or Op::Halt, inconsistent operand depths at a join, an out-of-range jump
// target — are rejected (CanJit=false) and transparently run on the VM.
//
//===----------------------------------------------------------------------===//

#include "lang/Jit.h"

#include "lang/JitAsm.h"
#include "lang/JitWide.h"
#include "runtime/ExecutionContext.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>

using namespace coverme;
using namespace coverme::lang;
using namespace coverme::lang::bc;
using namespace coverme::lang::bc::jit;

// The emitter needs an x86-64 POSIX target; everything else keeps the API
// with available() == false.
#if defined(COVERME_JIT) && defined(__x86_64__) &&                             \
    (defined(__unix__) || defined(__APPLE__))
#define COVERME_JIT_ENABLED 1
#else
#define COVERME_JIT_ENABLED 0
#endif

namespace coverme {
namespace lang {
namespace bc {
namespace detail {
// Defined in Vm.cpp; shared verbatim so the tiers cannot drift.
int32_t truncToInt32(double V);
uint32_t truncToUInt32(double V);
double runBuiltin(BuiltinId Id, double A, double B, int32_t N);
} // namespace detail
} // namespace bc
} // namespace lang
} // namespace coverme

#if COVERME_JIT_ENABLED

//===----------------------------------------------------------------------===//
// C bridges the fragments call (SysV ABI, addresses baked as imm64)
//===----------------------------------------------------------------------===//

extern "C" {

uint64_t covermeJitCond(uint32_t Site, uint32_t Op, double A, double B) {
  return rt::cond(Site, static_cast<CmpOp>(Op), A, B) ? 1u : 0u;
}

double covermeJitBuiltin(uint32_t Id, double A, double B) {
  return detail::runBuiltin(static_cast<BuiltinId>(Id), A, B, 0);
}

double covermeJitScalbn(double A, int32_t N) {
  return detail::runBuiltin(BuiltinId::Scalbn, A, 0.0, N);
}

uint64_t covermeJitD2I(double V) {
  return static_cast<uint64_t>(static_cast<int64_t>(detail::truncToInt32(V)));
}

uint64_t covermeJitD2U(double V) { return detail::truncToUInt32(V); }

void covermeJitZero(uint8_t *P, uint64_t N) { std::memset(P, 0, N); }

} // extern "C"

namespace {

// The assembler, register/condition-code names, and the eligibility
// analysis live in lang/JitAsm.h, shared with the wide emitter
// (JitWide.cpp) and the disassembler's backend annotations.

//===----------------------------------------------------------------------===//
// Per-function emitter
//===----------------------------------------------------------------------===//
//
// Fragment ABI (JitFrame offsets are hard-coded; see Jit.h):
//   rdi on entry = JitFrame*        rbp = JitFrame* (saved)
//   rbx = FMem base                 r13 = GMem base
//   r15 = DoublePool base           r14 = StepsLeft
//   operand slot i lives at [rsp + i*8]; the depth at every PC is static.
// Scratch: rax rcx rdx rsi rdi r8-r11, xmm0-xmm5 — all caller-saved, so
// bridge calls need no spills (no operand value is ever live in a scratch
// register across an instruction boundary).

class FnEmitter {
public:
  FnEmitter(const CompiledUnit &U, const FunctionInfo &F, Asm &A)
      : U(U), F(F), A(A) {}

  /// Analyzes and emits; false leaves the caller to roll the buffer back.
  bool run() {
    FragAnalysis FA;
    if (!FA.analyze(U, F))
      return false;
    Depth = std::move(FA.Depth);
    MaxDepth = FA.MaxDepth;
    CellBytes = FA.CellBytes;
    FrameDisp = FA.FrameDisp;
    FrameLimit = FA.FrameLimit;
    GlobalLimit = FA.GlobalLimit;
    StackAdj =
        static_cast<uint32_t>((static_cast<uint64_t>(MaxDepth) * 8 + 15) &
                              ~static_cast<uint64_t>(15));
    return emit();
  }

private:
  const CompiledUnit &U;
  const FunctionInfo &F;
  Asm &A;

  std::vector<int> Depth;       ///< Operand depth before each PC; -1 dead.
  int MaxDepth = 0;
  uint32_t CellBytes = 0;       ///< Entry pointer-parameter cells below frame.
  uint32_t FrameDisp = 0;       ///< CurBase for an entry call (= CellBytes).
  uint64_t FrameLimit = 0;      ///< FrameMem.size() during the fragment.
  uint64_t GlobalLimit = 0;     ///< GlobalMem.size() during the fragment.
  uint32_t StackAdj = 0;        ///< Prologue rsp adjustment (16-aligned).

  std::vector<size_t> CodeOff;  ///< Buffer offset of each emitted PC.
  struct Fixup {
    size_t Pos;
    uint32_t TargetPC;
  };
  std::vector<Fixup> JumpFix;   ///< rel32 -> CodeOff[TargetPC]
  std::vector<Fixup> CondStubs; ///< taken-edge stubs: charge + jump
  std::vector<size_t> TrapFix[8]; ///< per-JitTrap jcc/jmp sites
  std::vector<size_t> ExitFix;  ///< jumps to the epilogue

  static int32_t slot(int D) { return D * 8; }

  // ---- emission helpers -------------------------------------------------

  void jccTrap(unsigned CC, JitTrap T) {
    TrapFix[static_cast<size_t>(T)].push_back(A.jcc32(CC));
  }
  void jmpTrap(JitTrap T) {
    TrapFix[static_cast<size_t>(T)].push_back(A.jmp32());
  }

  // The VM's VM_CHARGE against BlockCost[TargetPC]: trap *before* running
  // a block that does not fit the remaining budget. r14 = StepsLeft.
  void charge(uint32_t TargetPC) {
    uint32_t C = U.BlockCost[TargetPC];
    if (C == 0)
      return;
    A.cmpRI64(R14, C);
    jccTrap(CC_B, JitTrap::Budget);
    A.subRI64(R14, C);
  }

  void jmpTo(uint32_t TargetPC) { JumpFix.push_back({A.jmp32(), TargetPC}); }

  // Conditional edge to TargetPC: the jcc lands on an out-of-line stub
  // that charges BlockCost[TargetPC] and jumps to its code, mirroring the
  // VM's charge-on-every-edge schedule.
  void jccTo(unsigned CC, uint32_t TargetPC) {
    CondStubs.push_back({A.jcc32(CC), TargetPC});
  }

  void callBridge(const void *Fn) {
    A.movRI64(RAX, reinterpret_cast<uint64_t>(Fn));
    A.callR(RAX);
  }

  // Vm::resolve: decodes the space-tagged pointer in rax into an address
  // in rdx, trapping exactly like the VM (null deref; OOB on bad offsets
  // and on reinterpreted non-pointer bytes). Clobbers rcx.
  void emitResolve(unsigned Size) {
    A.movRR64(RCX, RAX);
    A.shrRI64(RCX, 56);
    A.cmpRI32(RCX, 1);
    size_t JGlobal = A.jcc32(CC_E);
    A.cmpRI32(RCX, 2);
    size_t JFrame = A.jcc32(CC_E);
    A.testRR32(RCX, RCX);
    jccTrap(CC_E, JitTrap::NullDeref);
    jmpTrap(JitTrap::OutOfBounds);
    A.bindLocal(JGlobal);
    A.movRR32(RDX, RAX); // zero-extended 32-bit offset
    if (GlobalLimit >= Size) {
      A.cmpRI32(RDX, static_cast<uint32_t>(GlobalLimit - Size));
      jccTrap(CC_A, JitTrap::OutOfBounds);
      A.aluRR64(0x01, RDX, R13); // rdx += GMem
    } else {
      jmpTrap(JitTrap::OutOfBounds);
    }
    size_t JDone = A.jmp32();
    A.bindLocal(JFrame);
    A.movRR32(RDX, RAX);
    if (FrameLimit >= Size) {
      A.cmpRI32(RDX, static_cast<uint32_t>(FrameLimit - Size));
      jccTrap(CC_A, JitTrap::OutOfBounds);
      A.aluRR64(0x01, RDX, RBX); // rdx += FMem
    } else {
      jmpTrap(JitTrap::OutOfBounds);
    }
    A.bindLocal(JDone);
  }

  // Branch to TargetPC on evalCmp(Cmp, xmm0, xmm1) == WhenTrue, NaN
  // semantics included: unordered makes every ordered compare false (the
  // WhenTrue=false forms jump, the WhenTrue=true forms fall through) —
  // except NE, which NaN satisfies.
  void emitCmpDBranch(CmpOp Cmp, bool WhenTrue, uint32_t TargetPC) {
    switch (Cmp) {
    case CmpOp::EQ:
    case CmpOp::NE: {
      A.ucomisdXR(0, 1);
      bool JumpOnEqual = (Cmp == CmpOp::EQ) == WhenTrue;
      if (JumpOnEqual) {
        size_t JFall = A.jcc32(CC_P);
        jccTo(CC_E, TargetPC);
        A.bindLocal(JFall);
      } else {
        jccTo(CC_P, TargetPC);
        jccTo(CC_NE, TargetPC);
      }
      break;
    }
    case CmpOp::LT:
      A.ucomisdXR(1, 0);
      jccTo(WhenTrue ? CC_A : CC_BE, TargetPC);
      break;
    case CmpOp::LE:
      A.ucomisdXR(1, 0);
      jccTo(WhenTrue ? CC_AE : CC_B, TargetPC);
      break;
    case CmpOp::GT:
      A.ucomisdXR(0, 1);
      jccTo(WhenTrue ? CC_A : CC_BE, TargetPC);
      break;
    case CmpOp::GE:
      A.ucomisdXR(0, 1);
      jccTo(WhenTrue ? CC_AE : CC_B, TargetPC);
      break;
    }
  }

  // rt::cond(Site, Cmp, [d-2], [d-1]) -> rax (0/1). When JitFrame::
  // CondFast says no context is installed for this probe, the hook is a
  // pure evalCmp: evaluate it inline and skip the bridge call.
  void emitCondValue(uint32_t Site, uint32_t Cmp, int D) {
    A.movsdXM(0, RSP, slot(D - 2));
    A.movsdXM(1, RSP, slot(D - 1));
    A.movRM64(RAX, RBP, 48); // JitFrame::CondFast
    A.testRR64(RAX, RAX);
    size_t JInline = A.jcc32(CC_NE);
    A.movRI32(RDI, Site);
    A.movRI32(RSI, Cmp);
    callBridge(reinterpret_cast<const void *>(&covermeJitCond));
    size_t JDone = A.jmp32();
    A.bindLocal(JInline);
    emitCmpDFlag(static_cast<CmpOp>(Cmp));
    A.bindLocal(JDone);
  }

  // evalCmp(Op, xmm0, xmm1) -> al, reproducing C comparison semantics for
  // NaN through ucomisd's unordered flags (ZF=PF=CF=1).
  void emitCmpDFlag(CmpOp Op) {
    switch (Op) {
    case CmpOp::EQ:
      A.ucomisdXR(0, 1);
      A.setcc(CC_E, RAX);
      A.setcc(CC_NP, RCX);
      A.and8RR(RAX, RCX);
      break;
    case CmpOp::NE:
      A.ucomisdXR(0, 1);
      A.setcc(CC_NE, RAX);
      A.setcc(CC_P, RCX);
      A.or8RR(RAX, RCX);
      break;
    case CmpOp::LT: // a < b  ==  b ? a above
      A.ucomisdXR(1, 0);
      A.setcc(CC_A, RAX);
      break;
    case CmpOp::LE:
      A.ucomisdXR(1, 0);
      A.setcc(CC_AE, RAX);
      break;
    case CmpOp::GT:
      A.ucomisdXR(0, 1);
      A.setcc(CC_A, RAX);
      break;
    case CmpOp::GE:
      A.ucomisdXR(0, 1);
      A.setcc(CC_AE, RAX);
      break;
    }
    A.movzxR32R8(RAX, RAX);
  }

  // Integer/pointer compare of the full 64-bit slots at [d-2], [d-1],
  // canonical 0/1 int result stored at [d-2]. Signed for CmpI, unsigned
  // for CmpU/CmpP — exactly evalCmpInt<int64_t>/<uint64_t>.
  void emitCmpInt(CmpOp Op, int D, bool Signed) {
    static const unsigned SignedCC[6] = {CC_E, CC_NE, CC_L, CC_LE, CC_G, CC_GE};
    static const unsigned UnsignedCC[6] = {CC_E,  CC_NE, CC_B,
                                           CC_BE, CC_A,  CC_AE};
    A.movRM64(RAX, RSP, slot(D - 2));
    A.movRM64(RCX, RSP, slot(D - 1));
    A.aluRR64(0x39, RAX, RCX); // cmp rax, rcx
    unsigned CC = (Signed ? SignedCC : UnsignedCC)[static_cast<size_t>(Op)];
    A.setcc(CC, RAX);
    A.movzxR32R8(RAX, RAX);
    A.movMR64(RSP, slot(D - 2), RAX);
  }

  // Canonical-int store: sign-extend eax and store the slot.
  void storeCanonI(int D) {
    A.movsxdRR(RAX, RAX);
    A.movMR64(RSP, slot(D), RAX);
  }

  bool emit() {
    size_t N = U.Code.size();
    CodeOff.assign(N, SIZE_MAX);
    // Prologue: 5 pushes leave rsp 16-aligned (entry rsp % 16 == 8), and
    // StackAdj is a multiple of 16, so every bridge call site is aligned.
    A.push(RBP);
    A.push(RBX);
    A.push(R13);
    A.push(R14);
    A.push(R15);
    A.movRR64(RBP, RDI);
    if (StackAdj)
      A.subRI64(RSP, StackAdj);
    A.movRM64(RBX, RBP, 0);  // FMem
    A.movRM64(R13, RBP, 8);  // GMem
    A.movRM64(R15, RBP, 16); // Pool
    A.movRM64(R14, RBP, 24); // StepsLeft
    charge(F.Entry); // the VM's VM_JUMP(F.Entry) edge at the entry Call
    // Reachable PCs in ascending order: a non-terminator's successor PC+1
    // is always the next emitted PC, so straight-line code falls through.
    for (uint32_t PC = 0; PC < N; ++PC) {
      if (Depth[PC] < 0)
        continue;
      CodeOff[PC] = A.pos();
      if (!emitInsn(PC))
        return false;
    }
    // Taken-edge stubs: charge the target block, then jump to it.
    for (const Fixup &S : CondStubs) {
      A.patch32(S.Pos, A.pos());
      charge(S.TargetPC);
      jmpTo(S.TargetPC);
    }
    // Trap stubs (Budget..BadPtrConv); TrapOp writes its code inline.
    for (uint32_t T = 1; T <= 6; ++T) {
      if (TrapFix[T].empty())
        continue;
      size_t Here = A.pos();
      for (size_t P : TrapFix[T])
        A.patch32(P, Here);
      A.movMI32(RBP, 40, T); // JitFrame::TrapCode
      ExitFix.push_back(A.jmp32());
    }
    // Epilogue: write StepsLeft back, restore, return.
    size_t Exit = A.pos();
    for (size_t P : ExitFix)
      A.patch32(P, Exit);
    A.movMR64(RBP, 24, R14);
    if (StackAdj)
      A.addRI64(RSP, StackAdj);
    A.pop(R15);
    A.pop(R14);
    A.pop(R13);
    A.pop(RBX);
    A.pop(RBP);
    A.ret();
    // Branch targets are reachable by construction, so they were emitted.
    for (const Fixup &J : JumpFix) {
      if (J.TargetPC >= N || CodeOff[J.TargetPC] == SIZE_MAX)
        return false;
      A.patch32(J.Pos, CodeOff[J.TargetPC]);
    }
    return true;
  }

  bool emitInsn(uint32_t PC) {
    const Insn &I = U.Code[PC];
    int D = Depth[PC];
    switch (I.Code) {
    // ---- constants ------------------------------------------------------
    case Op::ConstD:
      A.movRM64(RAX, R15, static_cast<int32_t>(I.A * 8));
      A.movMR64(RSP, slot(D), RAX);
      return true;
    case Op::ConstI:
      A.movRI64(RAX, static_cast<uint64_t>(
                         static_cast<int64_t>(static_cast<int32_t>(I.A))));
      A.movMR64(RSP, slot(D), RAX);
      return true;
    case Op::ConstU:
      A.movRI32(RAX, I.A);
      A.movMR64(RSP, slot(D), RAX);
      return true;

    // ---- stack shuffling ------------------------------------------------
    case Op::Pop:
      return true;
    case Op::Dup:
      A.movRM64(RAX, RSP, slot(D - 1));
      A.movMR64(RSP, slot(D), RAX);
      return true;
    case Op::Swap:
      A.movRM64(RAX, RSP, slot(D - 1));
      A.movRM64(RCX, RSP, slot(D - 2));
      A.movMR64(RSP, slot(D - 1), RCX);
      A.movMR64(RSP, slot(D - 2), RAX);
      return true;
    case Op::Rot:
      A.movRM64(RAX, RSP, slot(D - 3));
      A.movRM64(RCX, RSP, slot(D - 2));
      A.movMR64(RSP, slot(D - 3), RCX);
      A.movRM64(RCX, RSP, slot(D - 1));
      A.movMR64(RSP, slot(D - 2), RCX);
      A.movMR64(RSP, slot(D - 1), RAX);
      return true;

    // ---- addresses ------------------------------------------------------
    case Op::AddrG:
      A.movRI64(RAX, encodePtr(Space::Global, I.A));
      A.movMR64(RSP, slot(D), RAX);
      return true;
    case Op::AddrF:
      A.movRI64(RAX, encodePtr(Space::Frame, FrameDisp + I.A));
      A.movMR64(RSP, slot(D), RAX);
      return true;

    // ---- checked accesses -----------------------------------------------
    case Op::LoadI:
      A.movRM64(RAX, RSP, slot(D - 1));
      emitResolve(4);
      A.movsxdRM(RAX, RDX, 0);
      A.movMR64(RSP, slot(D - 1), RAX);
      return true;
    case Op::LoadU:
      A.movRM64(RAX, RSP, slot(D - 1));
      emitResolve(4);
      A.movRM32(RAX, RDX, 0);
      A.movMR64(RSP, slot(D - 1), RAX);
      return true;
    case Op::LoadD:
    case Op::LoadP:
      A.movRM64(RAX, RSP, slot(D - 1));
      emitResolve(8);
      A.movRM64(RAX, RDX, 0);
      A.movMR64(RSP, slot(D - 1), RAX);
      return true;
    case Op::StoreI:
    case Op::StoreU:
      A.movRM64(RAX, RSP, slot(D - 2));
      emitResolve(4);
      A.movRM64(RCX, RSP, slot(D - 1));
      A.movMR32(RDX, 0, RCX); // low 32 bits of the slot
      if (I.B) {
        A.movRM64(RAX, RSP, slot(D - 1));
        A.movMR64(RSP, slot(D - 2), RAX); // push the full slot back
      }
      return true;
    case Op::StoreD:
    case Op::StoreP:
      A.movRM64(RAX, RSP, slot(D - 2));
      emitResolve(8);
      A.movRM64(RCX, RSP, slot(D - 1));
      A.movMR64(RDX, 0, RCX);
      if (I.B) {
        A.movMR64(RSP, slot(D - 2), RCX);
      }
      return true;

    // ---- fused unchecked accesses ---------------------------------------
    case Op::LdFI:
      A.movsxdRM(RAX, RBX, static_cast<int32_t>(FrameDisp + I.A));
      A.movMR64(RSP, slot(D), RAX);
      return true;
    case Op::LdFU:
      A.movRM32(RAX, RBX, static_cast<int32_t>(FrameDisp + I.A));
      A.movMR64(RSP, slot(D), RAX);
      return true;
    case Op::LdFD:
    case Op::LdFP:
      A.movRM64(RAX, RBX, static_cast<int32_t>(FrameDisp + I.A));
      A.movMR64(RSP, slot(D), RAX);
      return true;
    case Op::LdGI:
      A.movsxdRM(RAX, R13, static_cast<int32_t>(I.A));
      A.movMR64(RSP, slot(D), RAX);
      return true;
    case Op::LdGU:
      A.movRM32(RAX, R13, static_cast<int32_t>(I.A));
      A.movMR64(RSP, slot(D), RAX);
      return true;
    case Op::LdGD:
    case Op::LdGP:
      A.movRM64(RAX, R13, static_cast<int32_t>(I.A));
      A.movMR64(RSP, slot(D), RAX);
      return true;
    case Op::StFI:
    case Op::StFU:
      A.movRM64(RAX, RSP, slot(D - 1));
      A.movMR32(RBX, static_cast<int32_t>(FrameDisp + I.A), RAX);
      return true; // B: the slot simply stays
    case Op::StFD:
    case Op::StFP:
      A.movRM64(RAX, RSP, slot(D - 1));
      A.movMR64(RBX, static_cast<int32_t>(FrameDisp + I.A), RAX);
      return true;
    case Op::StGI:
    case Op::StGU:
      A.movRM64(RAX, RSP, slot(D - 1));
      A.movMR32(R13, static_cast<int32_t>(I.A), RAX);
      return true;
    case Op::StGD:
    case Op::StGP:
      A.movRM64(RAX, RSP, slot(D - 1));
      A.movMR64(R13, static_cast<int32_t>(I.A), RAX);
      return true;
    case Op::ZeroF:
      emitZero(RBX, static_cast<int32_t>(FrameDisp + I.A), I.B);
      return true;
    case Op::ZeroG:
      emitZero(R13, static_cast<int32_t>(I.A), I.B);
      return true;

    // ---- double arithmetic ----------------------------------------------
    case Op::AddD:
    case Op::SubD:
    case Op::MulD:
    case Op::DivD: {
      uint8_t Opc = I.Code == Op::AddD   ? 0x58
                    : I.Code == Op::SubD ? 0x5C
                    : I.Code == Op::MulD ? 0x59
                                         : 0x5E;
      A.movsdXM(0, RSP, slot(D - 2));
      A.sseXM(Opc, 0, RSP, slot(D - 1));
      A.movsdMX(RSP, slot(D - 2), 0);
      return true;
    }
    case Op::NegD:
      A.movRM64(RAX, RSP, slot(D - 1));
      A.movRI64(RCX, 0x8000000000000000ull);
      A.aluRR64(0x31, RAX, RCX); // xor: flip the sign bit, NaN included
      A.movMR64(RSP, slot(D - 1), RAX);
      return true;

    // ---- integer arithmetic ---------------------------------------------
    case Op::AddI:
    case Op::SubI:
    case Op::MulI: {
      A.movRM32(RAX, RSP, slot(D - 2));
      if (I.Code == Op::MulI)
        A.imulRM32(RAX, RSP, slot(D - 1));
      else
        A.aluRM32(I.Code == Op::AddI ? 0x03 : 0x2B, RAX, RSP, slot(D - 1));
      storeCanonI(D - 2);
      return true;
    }
    case Op::AddU:
    case Op::SubU:
    case Op::MulU: {
      A.movRM32(RAX, RSP, slot(D - 2));
      if (I.Code == Op::MulU)
        A.imulRM32(RAX, RSP, slot(D - 1));
      else
        A.aluRM32(I.Code == Op::AddU ? 0x03 : 0x2B, RAX, RSP, slot(D - 1));
      A.movMR64(RSP, slot(D - 2), RAX); // 32-bit op zero-extended rax
      return true;
    }
    case Op::DivI:
    case Op::RemI: {
      bool Rem = I.Code == Op::RemI;
      A.movRM32(RAX, RSP, slot(D - 2));
      A.movRM32(RCX, RSP, slot(D - 1));
      A.testRR32(RCX, RCX);
      jccTrap(CC_E, Rem ? JitTrap::RemZero : JitTrap::DivZero);
      // INT_MIN / -1 wraps (quotient INT_MIN, remainder 0) instead of #DE.
      A.cmpRI32(RAX, 0x80000000u);
      size_t JDo1 = A.jcc32(CC_NE);
      A.cmpRI32(RCX, 0xffffffffu);
      size_t JDo2 = A.jcc32(CC_NE);
      if (Rem)
        A.aluRR32(0x31, RAX, RAX); // remainder 0
      size_t JStore = A.jmp32();
      A.bindLocal(JDo1);
      A.bindLocal(JDo2);
      A.cdq();
      A.idivR32(RCX);
      if (Rem)
        A.movRR32(RAX, RDX);
      A.bindLocal(JStore);
      storeCanonI(D - 2);
      return true;
    }
    case Op::DivU:
    case Op::RemU: {
      bool Rem = I.Code == Op::RemU;
      A.movRM32(RAX, RSP, slot(D - 2));
      A.movRM32(RCX, RSP, slot(D - 1));
      A.testRR32(RCX, RCX);
      jccTrap(CC_E, Rem ? JitTrap::RemZero : JitTrap::DivZero);
      A.aluRR32(0x31, RDX, RDX);
      A.divR32(RCX);
      A.movMR64(RSP, slot(D - 2), Rem ? RDX : RAX);
      return true;
    }
    case Op::NegI:
      A.movRM32(RAX, RSP, slot(D - 1));
      A.negR32(RAX);
      storeCanonI(D - 1);
      return true;
    case Op::NegU:
      A.movRM32(RAX, RSP, slot(D - 1));
      A.negR32(RAX);
      A.movMR64(RSP, slot(D - 1), RAX);
      return true;
    case Op::ShlI:
    case Op::ShrI: {
      A.movRM32(RCX, RSP, slot(D - 1));
      A.movRM32(RAX, RSP, slot(D - 2));
      if (I.Code == Op::ShlI)
        A.shlCl32(RAX);
      else
        A.sarCl32(RAX); // arithmetic, as Fdlibm assumes
      storeCanonI(D - 2);
      return true;
    }
    case Op::ShlU:
    case Op::ShrU: {
      A.movRM32(RCX, RSP, slot(D - 1));
      A.movRM32(RAX, RSP, slot(D - 2));
      if (I.Code == Op::ShlU)
        A.shlCl32(RAX);
      else
        A.shrCl32(RAX);
      A.movMR64(RSP, slot(D - 2), RAX);
      return true;
    }
    case Op::And32:
    case Op::Or32:
    case Op::Xor32: {
      uint8_t Opc = I.Code == Op::And32  ? 0x23
                    : I.Code == Op::Or32 ? 0x0B
                                         : 0x33;
      A.movRM32(RAX, RSP, slot(D - 2));
      A.aluRM32(Opc, RAX, RSP, slot(D - 1));
      A.movMR64(RSP, slot(D - 2), RAX);
      return true;
    }
    case Op::NotI:
      A.movRM32(RAX, RSP, slot(D - 1));
      A.notR32(RAX);
      storeCanonI(D - 1);
      return true;
    case Op::NotU:
      A.movRM32(RAX, RSP, slot(D - 1));
      A.notR32(RAX);
      A.movMR64(RSP, slot(D - 1), RAX);
      return true;

    // ---- truthiness -----------------------------------------------------
    case Op::BoolI:
    case Op::LogNotI:
      A.movRM64(RAX, RSP, slot(D - 1));
      A.testRR64(RAX, RAX);
      A.setcc(I.Code == Op::BoolI ? CC_NE : CC_E, RAX);
      A.movzxR32R8(RAX, RAX);
      A.movMR64(RSP, slot(D - 1), RAX);
      return true;
    case Op::BoolD:
      A.movsdXM(0, RSP, slot(D - 1));
      A.xorpdXR(1, 1);
      emitCmpDFlag(CmpOp::NE); // D != 0.0 (NaN: true)
      A.movMR64(RSP, slot(D - 1), RAX);
      return true;
    case Op::LogNotD:
      A.movsdXM(0, RSP, slot(D - 1));
      A.xorpdXR(1, 1);
      emitCmpDFlag(CmpOp::EQ); // D == 0.0 (NaN: false)
      A.movMR64(RSP, slot(D - 1), RAX);
      return true;
    case Op::BoolP:
    case Op::LogNotP:
      A.movRM64(RAX, RSP, slot(D - 1));
      A.shrRI64(RAX, 56);
      A.testRR32(RAX, RAX);
      A.setcc(I.Code == Op::BoolP ? CC_NE : CC_E, RAX);
      A.movzxR32R8(RAX, RAX);
      A.movMR64(RSP, slot(D - 1), RAX);
      return true;

    // ---- conversions ----------------------------------------------------
    case Op::I2D:
      A.cvtsi2sdXM64(0, RSP, slot(D - 1)); // full int64, as the VM converts
      A.movsdMX(RSP, slot(D - 1), 0);
      return true;
    case Op::U2D:
      A.movRM32(RAX, RSP, slot(D - 1)); // zero-extend the canonical uint32
      A.cvtsi2sdXR64(0, RAX);
      A.movsdMX(RSP, slot(D - 1), 0);
      return true;
    case Op::D2I:
      A.movsdXM(0, RSP, slot(D - 1));
      callBridge(reinterpret_cast<const void *>(&covermeJitD2I));
      A.movMR64(RSP, slot(D - 1), RAX);
      return true;
    case Op::D2U:
      A.movsdXM(0, RSP, slot(D - 1));
      callBridge(reinterpret_cast<const void *>(&covermeJitD2U));
      A.movMR64(RSP, slot(D - 1), RAX);
      return true;
    case Op::I2U:
      A.movRM32(RAX, RSP, slot(D - 1)); // low 32, zero-extended
      A.movMR64(RSP, slot(D - 1), RAX);
      return true;
    case Op::U2I:
      A.movsxdRM(RAX, RSP, slot(D - 1));
      A.movMR64(RSP, slot(D - 1), RAX);
      return true;
    case Op::I2P:
      A.movRM64(RAX, RSP, slot(D - 1));
      A.testRR64(RAX, RAX);
      jccTrap(CC_NE, JitTrap::BadPtrConv);
      A.movMR64(RSP, slot(D - 1), RAX); // rax == 0: the null pointer
      return true;

    // ---- comparisons ----------------------------------------------------
    case Op::CmpD:
      A.movsdXM(0, RSP, slot(D - 2));
      A.movsdXM(1, RSP, slot(D - 1));
      emitCmpDFlag(static_cast<CmpOp>(I.A));
      A.movMR64(RSP, slot(D - 2), RAX);
      return true;
    case Op::CmpI:
      emitCmpInt(static_cast<CmpOp>(I.A), D, /*Signed=*/true);
      return true;
    case Op::CmpU:
    case Op::CmpP:
      emitCmpInt(static_cast<CmpOp>(I.A), D, /*Signed=*/false);
      return true;
    case Op::PNullCmp:
      A.movRM64(RAX, RSP, slot(D - 1));
      A.shrRI64(RAX, 56);
      A.testRR32(RAX, RAX);
      A.setcc(I.A != 0 ? CC_E : CC_NE, RAX);
      A.movzxR32R8(RAX, RAX);
      A.movMR64(RSP, slot(D - 1), RAX);
      return true;

    // ---- pointer arithmetic ---------------------------------------------
    case Op::PtrAdd:
      A.movsxdRM(RAX, RSP, slot(D - 1)); // int64(int32 index)
      A.movRI64(RCX, I.A);
      A.imulRR64(RAX, RCX);
      if (I.B)
        A.negR64(RAX);
      A.movRM64(RDX, RSP, slot(D - 2));
      A.movRR32(RCX, RDX);       // old 32-bit offset, zero-extended
      A.aluRR32(0x01, RCX, RAX); // 32-bit add: uint32 wrap, as the VM
      A.movRI64(RSI, 0xff00000000000000ull);
      A.aluRR64(0x21, RDX, RSI); // keep the space tag
      A.aluRR64(0x09, RDX, RCX); // or in the new offset
      A.movMR64(RSP, slot(D - 2), RDX);
      return true;

    // ---- control flow ---------------------------------------------------
    case Op::Jump:
      charge(I.A);
      jmpTo(I.A);
      return true;
    case Op::JfI:
    case Op::JtI:
      A.movRM64(RAX, RSP, slot(D - 1));
      A.testRR64(RAX, RAX);
      jccTo(I.Code == Op::JfI ? CC_E : CC_NE, I.A);
      charge(PC + 1);
      return true;
    case Op::JfP:
    case Op::JtP:
      A.movRM64(RAX, RSP, slot(D - 1));
      A.shrRI64(RAX, 56);
      A.testRR32(RAX, RAX);
      jccTo(I.Code == Op::JfP ? CC_E : CC_NE, I.A);
      charge(PC + 1);
      return true;
    case Op::JfD: {
      A.movsdXM(0, RSP, slot(D - 1));
      A.xorpdXR(1, 1);
      A.ucomisdXR(0, 1);
      size_t JFall = A.jcc32(CC_P); // NaN != 0.0: not taken
      jccTo(CC_E, I.A);
      A.bindLocal(JFall);
      charge(PC + 1);
      return true;
    }
    case Op::JtD:
      A.movsdXM(0, RSP, slot(D - 1));
      A.xorpdXR(1, 1);
      A.ucomisdXR(0, 1);
      jccTo(CC_P, I.A); // NaN != 0.0: taken
      jccTo(CC_NE, I.A);
      charge(PC + 1);
      return true;

    // ---- instrumentation ------------------------------------------------
    case Op::CondSite:
      emitCondValue(I.A, I.B, D);
      A.movMR64(RSP, slot(D - 2), RAX);
      return true;
    case Op::CondSiteJf:
    case Op::CondSiteJt: {
      bool WhenTrue = I.Code == Op::CondSiteJt;
      CmpOp Cmp = static_cast<CmpOp>(I.B & 7u);
      A.movsdXM(0, RSP, slot(D - 2));
      A.movsdXM(1, RSP, slot(D - 1));
      A.movRM64(RAX, RBP, 48); // JitFrame::CondFast
      A.testRR64(RAX, RAX);
      size_t JInline = A.jcc32(CC_NE);
      A.movRI32(RDI, I.B >> 3);
      A.movRI32(RSI, I.B & 7u);
      callBridge(reinterpret_cast<const void *>(&covermeJitCond));
      A.testRR32(RAX, RAX);
      jccTo(WhenTrue ? CC_NE : CC_E, I.A);
      size_t JDone = A.jmp32();
      A.bindLocal(JInline);
      emitCmpDBranch(Cmp, WhenTrue, I.A);
      A.bindLocal(JDone);
      charge(PC + 1);
      return true;
    }
    case Op::CmpDJf:
    case Op::CmpDJt:
      A.movsdXM(0, RSP, slot(D - 2));
      A.movsdXM(1, RSP, slot(D - 1));
      emitCmpDBranch(static_cast<CmpOp>(I.B), I.Code == Op::CmpDJt, I.A);
      charge(PC + 1);
      return true;

    // ---- builtin calls --------------------------------------------------
    case Op::CallB: {
      BuiltinId Id = static_cast<BuiltinId>(I.A);
      if (Id == BuiltinId::Fabs) {
        // runBuiltin's std::fabs is a pure sign-bit clear (payload and
        // quietness untouched), so the inline AND is bit-identical and
        // the bridge call can be skipped on this hot builtin.
        A.movRM64(RAX, RSP, slot(D - 1));
        A.movRI64(RCX, 0x7fffffffffffffffull);
        A.aluRR64(0x21, RAX, RCX);
        A.movMR64(RSP, slot(D - 1), RAX);
      } else if (Id == BuiltinId::Scalbn) {
        A.movRM32(RDI, RSP, slot(D - 1)); // int32 exponent
        A.movsdXM(0, RSP, slot(D - 2));
        callBridge(reinterpret_cast<const void *>(&covermeJitScalbn));
        A.movsdMX(RSP, slot(D - 2), 0);
      } else if (I.B == 2) {
        A.movRI32(RDI, I.A);
        A.movsdXM(0, RSP, slot(D - 2));
        A.movsdXM(1, RSP, slot(D - 1));
        callBridge(reinterpret_cast<const void *>(&covermeJitBuiltin));
        A.movsdMX(RSP, slot(D - 2), 0);
      } else {
        A.movRI32(RDI, I.A);
        A.movsdXM(0, RSP, slot(D - 1));
        A.xorpdXR(1, 1);
        callBridge(reinterpret_cast<const void *>(&covermeJitBuiltin));
        A.movsdMX(RSP, slot(D - 1), 0);
      }
      return true;
    }

    // ---- returns and traps ----------------------------------------------
    case Op::Ret:
    case Op::RetV: {
      // The VM returns to the entry thunk's Halt: VM_JUMP(Thunk+1)
      // charges that block, then Halt exits. Replay the charge here.
      uint32_t HaltPC = F.Thunk + 1;
      if (HaltPC >= U.BlockCost.size())
        return false;
      charge(HaltPC);
      if (I.Code == Op::Ret) {
        A.movRM64(RAX, RSP, slot(D - 1));
        A.movMR64(RBP, 32, RAX); // JitFrame::ResultBits
      }
      ExitFix.push_back(A.jmp32());
      return true;
    }
    case Op::TrapOp:
      A.movMI32(RBP, 40, static_cast<uint32_t>(JitTrap::Message));
      A.movMI32(RBP, 44, I.A); // TrapMessages index
      ExitFix.push_back(A.jmp32());
      return true;

    // ---- superinstructions ----------------------------------------------
    case Op::LdF2AddD:
    case Op::LdF2SubD:
    case Op::LdF2MulD:
    case Op::LdF2DivD: {
      uint8_t Opc = I.Code == Op::LdF2AddD   ? 0x58
                    : I.Code == Op::LdF2SubD ? 0x5C
                    : I.Code == Op::LdF2MulD ? 0x59
                                             : 0x5E;
      A.movsdXM(0, RBX, static_cast<int32_t>(FrameDisp + I.A));
      A.sseXM(Opc, 0, RBX, static_cast<int32_t>(FrameDisp + I.B));
      A.movsdMX(RSP, slot(D), 0);
      return true;
    }
    case Op::LdFAddD:
    case Op::LdFSubD:
    case Op::LdFMulD:
    case Op::LdFDivD: {
      uint8_t Opc = I.Code == Op::LdFAddD   ? 0x58
                    : I.Code == Op::LdFSubD ? 0x5C
                    : I.Code == Op::LdFMulD ? 0x59
                                            : 0x5E;
      A.movsdXM(0, RSP, slot(D - 1));
      A.sseXM(Opc, 0, RBX, static_cast<int32_t>(FrameDisp + I.A));
      A.movsdMX(RSP, slot(D - 1), 0);
      return true;
    }
    case Op::LdGAddD:
    case Op::LdGSubD:
    case Op::LdGMulD:
    case Op::LdGDivD: {
      uint8_t Opc = I.Code == Op::LdGAddD   ? 0x58
                    : I.Code == Op::LdGSubD ? 0x5C
                    : I.Code == Op::LdGMulD ? 0x59
                                            : 0x5E;
      A.movsdXM(0, RSP, slot(D - 1));
      A.sseXM(Opc, 0, R13, static_cast<int32_t>(I.A));
      A.movsdMX(RSP, slot(D - 1), 0);
      return true;
    }
    case Op::ConstAddD:
    case Op::ConstSubD:
    case Op::ConstMulD:
    case Op::ConstDivD: {
      uint8_t Opc = I.Code == Op::ConstAddD   ? 0x58
                    : I.Code == Op::ConstSubD ? 0x5C
                    : I.Code == Op::ConstMulD ? 0x59
                                              : 0x5E;
      A.movsdXM(0, RSP, slot(D - 1));
      A.sseXM(Opc, 0, R15, static_cast<int32_t>(I.A * 8));
      A.movsdMX(RSP, slot(D - 1), 0);
      return true;
    }
    case Op::LdFI2D:
      A.movsxdRM(RAX, RBX, static_cast<int32_t>(FrameDisp + I.A));
      A.cvtsi2sdXR64(0, RAX);
      A.movsdMX(RSP, slot(D), 0);
      return true;
    case Op::LdFU2D:
      A.movRM32(RAX, RBX, static_cast<int32_t>(FrameDisp + I.A));
      A.cvtsi2sdXR64(0, RAX);
      A.movsdMX(RSP, slot(D), 0);
      return true;

    default:
      return false;
    }
  }

  // memset(base+disp, 0, Len): unrolled qword/dword stores for the small
  // local arrays Fdlibm code declares; bridge call past 64 bytes.
  void emitZero(unsigned Base, int32_t Disp, uint32_t Len) {
    if (Len <= 64) {
      uint32_t Off = 0;
      while (Len - Off >= 8) {
        A.movMI64s(Base, Disp + static_cast<int32_t>(Off), 0);
        Off += 8;
      }
      while (Len - Off >= 4) {
        A.movMI32(Base, Disp + static_cast<int32_t>(Off), 0);
        Off += 4;
      }
      if (Off < Len) { // byte tail (cannot happen for 4/8-byte types)
        A.leaRM(RDI, Base, Disp + static_cast<int32_t>(Off));
        A.movRI32(RSI, Len - Off);
        callBridge(reinterpret_cast<const void *>(&covermeJitZero));
      }
      return;
    }
    A.leaRM(RDI, Base, Disp);
    A.movRI32(RSI, Len);
    callBridge(reinterpret_cast<const void *>(&covermeJitZero));
  }
};

} // namespace

bool JitUnit::available() { return ExecMemory::supported(); }

std::shared_ptr<const JitUnit>
JitUnit::build(const std::shared_ptr<const CompiledUnit> &Unit) {
  if (!Unit || Unit->Functions.empty() || !ExecMemory::supported())
    return nullptr;
  Asm A;
  std::vector<size_t> Offs(Unit->Functions.size(), SIZE_MAX);
  for (size_t I = 0; I < Unit->Functions.size(); ++I) {
    size_t Mark = A.Buf.size();
    while (A.Buf.size() % 16)
      A.byte(0xCC);
    size_t Start = A.Buf.size();
    FnEmitter E(*Unit, Unit->Functions[I], A);
    if (E.run())
      Offs[I] = Start;
    else
      A.Buf.resize(Mark); // roll the partial fragment back
  }
  // The 4-lane wide fragment family (lang/JitWide.cpp) shares the code
  // arena. Only functions with a scalar fragment get one: retired lanes
  // re-run through the scalar fragment, and the bind-time thunk hoist
  // (StepsAfterThunk) is only computed on the scalar-fragment path.
  std::vector<size_t> WOffs(Unit->Functions.size(), SIZE_MAX);
  if (wjit::wideEmitterAvailable()) {
    for (size_t I = 0; I < Unit->Functions.size(); ++I) {
      if (Offs[I] == SIZE_MAX)
        continue;
      size_t Mark = A.Buf.size();
      while (A.Buf.size() % 16)
        A.byte(0xCC);
      size_t Start = A.Buf.size();
      if (wjit::emitWideFragment(*Unit, static_cast<unsigned>(I), A))
        WOffs[I] = Start;
      else
        A.Buf.resize(Mark);
    }
  }
  bool Any = false;
  for (size_t O : Offs)
    Any |= O != SIZE_MAX;
  if (!Any)
    return nullptr;
  std::shared_ptr<JitUnit> U(new JitUnit());
  U->Unit = Unit;
  if (!U->Mem.seal(A.Buf.data(), A.Buf.size()))
    return nullptr;
  uintptr_t Base = reinterpret_cast<uintptr_t>(U->Mem.base());
  U->Fragments.assign(Offs.size(), nullptr);
  for (size_t I = 0; I < Offs.size(); ++I)
    if (Offs[I] != SIZE_MAX)
      U->Fragments[I] = reinterpret_cast<JitEntryFn>(Base + Offs[I]);
  U->WideFragments.assign(WOffs.size(), nullptr);
  for (size_t I = 0; I < WOffs.size(); ++I)
    if (WOffs[I] != SIZE_MAX)
      U->WideFragments[I] = reinterpret_cast<WideFn>(Base + WOffs[I]);
  return U;
}

#else // !COVERME_JIT_ENABLED

bool JitUnit::available() { return false; }

std::shared_ptr<const JitUnit>
JitUnit::build(const std::shared_ptr<const CompiledUnit> &Unit) {
  (void)Unit;
  return nullptr;
}

#endif // COVERME_JIT_ENABLED
