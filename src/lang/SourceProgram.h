//===- SourceProgram.h - C source text as a testable Program --------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top of the source pipeline: parse + analyze + wrap, turning a C
/// translation unit into a coverme::Program whose body executes through the
/// interpreter. This is the in-process equivalent of the paper's full
/// frontend (Fig. 4): where CoverMe compiles FOO with Clang, injects pen
/// with an LLVM pass, and loads libr.so, compileSourceProgram() parses FOO,
/// numbers its conditional sites in Sema, and hands back a Program whose
/// every execution reports to the same runtime hooks — ready for the
/// CoverMe driver, the baseline testers, and the coverage recorder without
/// any on-disk artifacts.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_LANG_SOURCEPROGRAM_H
#define COVERME_LANG_SOURCEPROGRAM_H

#include "lang/Compiler.h"
#include "lang/Interp.h"
#include "lang/Parser.h"
#include "runtime/Program.h"

#include <memory>
#include <string>
#include <vector>

namespace coverme {
namespace lang {

namespace bc {
class JitUnit; // lang/Jit.h
}

/// Which executor backs the Program's body.
enum class ExecutionTier : uint8_t {
  /// Compile once to lang/Bytecode, run on a per-thread lang/Vm. The
  /// body is reentrant (Program::ThreadSafeBody), so campaigns shard
  /// rounds across threads. This is the default.
  Bytecode,
  /// The PR-1 tree-walking lang/Interp: one shared interpreter, body not
  /// reentrant. Kept as the semantic reference — the differential suite
  /// holds the two tiers bit-identical — and as an escape hatch.
  TreeWalker,
  /// The Bytecode tier plus lang/Jit native fragments: eligible functions
  /// run as x86-64 machine code inside the per-thread Vm probe; functions
  /// the emitter rejects (calls, unprovable stack shapes) and builds
  /// without COVERME_JIT fall back to the VM transparently. Observably
  /// identical to both other tiers — returns, hook order, traps, and
  /// step-budget exhaustion points.
  Jit,
};

/// A compiled-from-source program: the analyzed unit, its executors, and
/// the Program handle the rest of the library consumes. Movable but not
/// copyable; the Program's body closure keeps the unit alive via shared
/// ownership, so the Program remains valid even after this struct is
/// destroyed.
struct SourceProgram {
  std::shared_ptr<TranslationUnit> Unit;
  /// The tree-walker over Unit; always built (it doubles as the semantic
  /// reference for differential tests, whichever tier backs Prog).
  std::shared_ptr<Interpreter> Interp;
  /// The bytecode form; non-null when the Bytecode or Jit tier was
  /// requested.
  std::shared_ptr<const bc::CompiledUnit> Code;
  /// The native form; non-null when the Jit tier was requested and the
  /// build can JIT (lang/Jit.h). Null means the VM runs everything.
  std::shared_ptr<const bc::JitUnit> Jit;
  const FunctionDecl *Entry = nullptr;
  Program Prog;
  std::vector<Diagnostic> Diags;

  bool success() const { return Diags.empty(); }

  /// All diagnostics joined with newlines, for error reporting.
  std::string diagnosticsText() const;
};

/// Options for the source pipeline.
struct SourceProgramOptions {
  /// Execution limits for each body execution (both tiers share the same
  /// budget semantics: exhausting MaxSteps traps to NaN, never hangs).
  InterpOptions Interp;

  /// Overrides the synthetic line count used by the Table-5 line model;
  /// 0 derives it from the entry function's source extent.
  unsigned TotalLines = 0;

  /// Which executor backs Prog.Body.
  ExecutionTier Tier = ExecutionTier::Bytecode;

  /// Run the bytecode compiler's superinstruction (peephole) pass.
  /// Fused and unfused streams are observably identical — same results,
  /// hook order, traps, and step-budget exhaustion points — so this knob
  /// exists for differential testing and dispatch-cost measurement, not
  /// for semantics. Ignored by the tree-walker tier.
  bool Fuse = true;
};

/// Builds a Program executing \p EntryName from \p Source. On failure the
/// result's Diags is non-empty and Prog must not be used. Entry parameters
/// follow the paper's lowering: double passes through, double* becomes a
/// seeded cell, int/unsigned truncate (Sect. 5.3 + the int extension).
SourceProgram compileSourceProgram(const std::string &Source,
                                   const std::string &EntryName,
                                   const SourceProgramOptions &Opts = {});

} // namespace lang
} // namespace coverme

#endif // COVERME_LANG_SOURCEPROGRAM_H
