//===- Ast.h - Syntax tree for the mini-C frontend -------------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract syntax tree for the C subset CoverMe's frontend understands:
/// the dialect Fdlibm 5.3 is written in. It covers `int` / `unsigned` /
/// `double` scalars and pointers, the full C expression grammar over them
/// (bit twiddling like `*(1 + (int *)&x)` included), the structured
/// statements (`if`/`while`/`do`/`for`/`return`), and file-scope constants
/// such as Fdlibm's polynomial coefficient tables.
///
/// The tree is produced by the Parser, annotated by Sema (symbol resolution,
/// type caching, conditional-site numbering), and executed by the
/// Interpreter — together they replace the Clang/LLVM pipeline the paper's
/// implementation drives (Sect. 5.1) with an in-process equivalent.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_LANG_AST_H
#define COVERME_LANG_AST_H

#include "runtime/BranchDistance.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace coverme {
namespace lang {

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

/// Scalar base types of the subset. `Int` and `UInt` are exactly 32 bits
/// (the width every Fdlibm bit manipulation assumes); `Double` is IEEE
/// binary64.
enum class BaseType : uint8_t {
  Void,
  Int,
  UInt,
  Double,
};

/// A (possibly pointer) type: base type plus pointer depth.
struct Type {
  BaseType Base = BaseType::Void;
  uint8_t PtrDepth = 0;

  constexpr Type() = default;
  constexpr Type(BaseType Base, uint8_t PtrDepth = 0)
      : Base(Base), PtrDepth(PtrDepth) {}

  bool isVoid() const { return Base == BaseType::Void && PtrDepth == 0; }
  bool isPointer() const { return PtrDepth > 0; }
  bool isDouble() const { return Base == BaseType::Double && PtrDepth == 0; }
  bool isInteger() const {
    return (Base == BaseType::Int || Base == BaseType::UInt) && PtrDepth == 0;
  }
  bool isArithmetic() const { return isDouble() || isInteger(); }

  /// The type obtained by dereferencing this pointer type.
  Type pointee() const {
    assert(PtrDepth > 0 && "pointee() of a non-pointer type");
    return Type(Base, static_cast<uint8_t>(PtrDepth - 1));
  }

  /// The type of `&expr` when `expr` has this type.
  Type pointerTo() const {
    return Type(Base, static_cast<uint8_t>(PtrDepth + 1));
  }

  /// Storage size in bytes (pointers are modeled as 8-byte values).
  unsigned sizeInBytes() const {
    if (PtrDepth > 0)
      return 8;
    switch (Base) {
    case BaseType::Void:
      return 0;
    case BaseType::Int:
    case BaseType::UInt:
      return 4;
    case BaseType::Double:
      return 8;
    }
    assert(false && "unknown BaseType");
    return 0;
  }

  friend bool operator==(const Type &L, const Type &R) {
    return L.Base == R.Base && L.PtrDepth == R.PtrDepth;
  }
  friend bool operator!=(const Type &L, const Type &R) { return !(L == R); }
};

/// Renders a type as C source, e.g. "int *" or "double".
std::string typeName(Type Ty);

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

struct VarDecl;
struct FunctionDecl;

/// Expression node kinds. Binary operators are separate enumerators so the
/// evaluator can switch exhaustively.
enum class ExprKind : uint8_t {
  IntLiteral,    ///< 42, 0x7ff00000
  DoubleLiteral, ///< 1.0, 1e-30
  VarRef,        ///< x (resolved to a VarDecl by Sema)
  Unary,         ///< -e, !e, ~e, *e, &e, ++e, --e
  Postfix,       ///< e++, e--
  Cast,          ///< (int *)e, (double)e
  Binary,        ///< e1 op e2 for every C binary operator
  Ternary,       ///< c ? t : f
  Assign,        ///< lhs = rhs and compound assignments
  Call,          ///< f(args...)
  Index,         ///< a[i]
};

/// Unary operator spellings.
enum class UnaryOp : uint8_t {
  Neg,    ///< -e
  LogNot, ///< !e
  BitNot, ///< ~e
  Deref,  ///< *e
  AddrOf, ///< &e
  PreInc, ///< ++e
  PreDec, ///< --e
};

/// Binary operator spellings (assignment operators live in AssignExpr).
enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Shl,
  Shr,
  BitAnd,
  BitOr,
  BitXor,
  LT,
  LE,
  GT,
  GE,
  EQ,
  NE,
  LogAnd,
  LogOr,
  Comma, ///< `a, b` — evaluate a for effect, yield b.
};

/// True for the six comparison operators — the condition shape Def. 3.1(b)
/// instruments.
bool isComparisonOp(BinaryOp Op);

/// Maps a comparison BinaryOp to the runtime's CmpOp for the pen hook.
CmpOp toCmpOp(BinaryOp Op);

/// Assignment operator spellings.
enum class AssignOp : uint8_t {
  Assign, ///< =
  Add,    ///< +=
  Sub,    ///< -=
  Mul,    ///< *=
  Div,    ///< /=
  Rem,    ///< %=
  Shl,    ///< <<=
  Shr,    ///< >>=
  And,    ///< &=
  Or,     ///< |=
  Xor,    ///< ^=
};

/// Base class of all expressions. Sema caches the computed type in Ty.
struct Expr {
  ExprKind Kind;
  unsigned Line = 0; ///< 1-based source line, for diagnostics.
  Type Ty;           ///< Filled by Sema::run.

  explicit Expr(ExprKind Kind) : Kind(Kind) {}
  virtual ~Expr();

  Expr(const Expr &) = delete;
  Expr &operator=(const Expr &) = delete;
};

using ExprPtr = std::unique_ptr<Expr>;

/// Integer literal; hex literals that do not fit `int` (e.g. 0x80000000)
/// carry unsigned type, matching C's literal typing for the Fdlibm masks.
struct IntLiteralExpr : Expr {
  uint64_t Value = 0;
  bool IsUnsigned = false;

  IntLiteralExpr() : Expr(ExprKind::IntLiteral) {}
};

/// Floating literal.
struct DoubleLiteralExpr : Expr {
  double Value = 0.0;

  DoubleLiteralExpr() : Expr(ExprKind::DoubleLiteral) {}
};

/// Reference to a named variable; Decl is resolved by Sema.
struct VarRefExpr : Expr {
  std::string Name;
  const VarDecl *Decl = nullptr;

  VarRefExpr() : Expr(ExprKind::VarRef) {}
};

struct UnaryExpr : Expr {
  UnaryOp Op = UnaryOp::Neg;
  ExprPtr Operand;

  UnaryExpr() : Expr(ExprKind::Unary) {}
};

/// e++ / e--.
struct PostfixExpr : Expr {
  bool IsIncrement = true;
  ExprPtr Operand;

  PostfixExpr() : Expr(ExprKind::Postfix) {}
};

struct CastExpr : Expr {
  Type Target;
  ExprPtr Operand;

  CastExpr() : Expr(ExprKind::Cast) {}
};

struct BinaryExpr : Expr {
  BinaryOp Op = BinaryOp::Add;
  ExprPtr Lhs;
  ExprPtr Rhs;

  BinaryExpr() : Expr(ExprKind::Binary) {}
};

struct TernaryExpr : Expr {
  ExprPtr Cond;
  ExprPtr TrueExpr;
  ExprPtr FalseExpr;

  TernaryExpr() : Expr(ExprKind::Ternary) {}
};

struct AssignExpr : Expr {
  AssignOp Op = AssignOp::Assign;
  ExprPtr Lhs;
  ExprPtr Rhs;

  AssignExpr() : Expr(ExprKind::Assign) {}
};

/// Call to a translation-unit function or a libm builtin; Callee is
/// resolved by Sema (null means builtin, identified by Name).
struct CallExpr : Expr {
  std::string Name;
  const FunctionDecl *Callee = nullptr;
  std::vector<ExprPtr> Args;

  CallExpr() : Expr(ExprKind::Call) {}
};

/// Array subscript `Base[Index]`.
struct IndexExpr : Expr {
  ExprPtr Base;
  ExprPtr Index;

  IndexExpr() : Expr(ExprKind::Index) {}
};

/// Checked downcast helper for expression nodes.
template <typename T> const T &exprCast(const Expr &E) {
  return static_cast<const T &>(E);
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

/// Where a variable's storage lives.
enum class StorageKind : uint8_t {
  Global, ///< File scope (Fdlibm's `static const` tables and constants).
  Param,  ///< Function parameter.
  Local,  ///< Block-scope variable.
};

/// One declared variable (scalar or one-dimensional array).
struct VarDecl {
  std::string Name;
  Type DeclType;
  StorageKind Storage = StorageKind::Local;
  unsigned Line = 0;

  /// 0 for scalars; element count for `double T[n]` arrays.
  unsigned ArraySize = 0;

  /// Scalar initializer, or null. Arrays use InitList instead.
  ExprPtr Init;

  /// Array initializer elements (constant expressions).
  std::vector<ExprPtr> InitList;

  /// Byte offset within the owning arena (frame or global), set by Sema.
  unsigned ByteOffset = 0;

  bool isArray() const { return ArraySize > 0; }

  /// Bytes of storage this declaration occupies.
  unsigned storageBytes() const {
    unsigned Elem = DeclType.sizeInBytes();
    return isArray() ? Elem * ArraySize : Elem;
  }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind : uint8_t {
  Expr,     ///< expression;
  Decl,     ///< declarations;
  Block,    ///< { ... }
  If,       ///< if (c) s [else s]
  While,    ///< while (c) s
  DoWhile,  ///< do s while (c);
  For,      ///< for (init; c; step) s
  Return,   ///< return [e];
  Break,    ///< break;
  Continue, ///< continue;
  Empty,    ///< ;
};

struct Stmt {
  StmtKind Kind;
  unsigned Line = 0;

  explicit Stmt(StmtKind Kind) : Kind(Kind) {}
  virtual ~Stmt();

  Stmt(const Stmt &) = delete;
  Stmt &operator=(const Stmt &) = delete;
};

using StmtPtr = std::unique_ptr<Stmt>;

struct ExprStmt : Stmt {
  ExprPtr E;

  ExprStmt() : Stmt(StmtKind::Expr) {}
};

struct DeclStmt : Stmt {
  std::vector<std::unique_ptr<VarDecl>> Decls;

  DeclStmt() : Stmt(StmtKind::Decl) {}
};

struct BlockStmt : Stmt {
  std::vector<StmtPtr> Body;

  BlockStmt() : Stmt(StmtKind::Block) {}
};

/// A conditional site id; kNoSite marks conditions outside Def. 3.1(b)'s
/// shape (compound &&/|| conditions, pointer tests), which the frontend
/// leaves uninstrumented exactly as CoverMe does (Sect. 5.3).
inline constexpr uint32_t kNoSite = ~0u;

struct IfStmt : Stmt {
  ExprPtr Cond;
  StmtPtr Then;
  StmtPtr Else; ///< May be null.
  uint32_t Site = kNoSite;

  IfStmt() : Stmt(StmtKind::If) {}
};

struct WhileStmt : Stmt {
  ExprPtr Cond;
  StmtPtr Body;
  uint32_t Site = kNoSite;

  WhileStmt() : Stmt(StmtKind::While) {}
};

struct DoWhileStmt : Stmt {
  StmtPtr Body;
  ExprPtr Cond;
  uint32_t Site = kNoSite;

  DoWhileStmt() : Stmt(StmtKind::DoWhile) {}
};

struct ForStmt : Stmt {
  StmtPtr Init;  ///< DeclStmt, ExprStmt, or null.
  ExprPtr Cond;  ///< May be null (infinite loop).
  ExprPtr Step;  ///< May be null.
  StmtPtr Body;
  uint32_t Site = kNoSite;

  ForStmt() : Stmt(StmtKind::For) {}
};

struct ReturnStmt : Stmt {
  ExprPtr Value; ///< Null for `return;`.

  ReturnStmt() : Stmt(StmtKind::Return) {}
};

struct BreakStmt : Stmt {
  BreakStmt() : Stmt(StmtKind::Break) {}
};

struct ContinueStmt : Stmt {
  ContinueStmt() : Stmt(StmtKind::Continue) {}
};

struct EmptyStmt : Stmt {
  EmptyStmt() : Stmt(StmtKind::Empty) {}
};

/// Checked downcast helper for statement nodes.
template <typename T> const T &stmtCast(const Stmt &S) {
  return static_cast<const T &>(S);
}

//===----------------------------------------------------------------------===//
// Functions and translation units
//===----------------------------------------------------------------------===//

/// One function definition.
struct FunctionDecl {
  std::string Name;
  Type ReturnType;
  unsigned Line = 0;
  std::vector<std::unique_ptr<VarDecl>> Params;
  std::unique_ptr<BlockStmt> Body;

  /// Frame bytes needed for params + locals; set by Sema.
  unsigned FrameBytes = 0;

  /// Conditional sites inside this function, in source order; set by Sema.
  /// (Site ids are numbered per translation unit so an entry function plus
  /// its callees share one site space, per Sect. 5.3 "Handling Function
  /// Calls".)
  std::vector<uint32_t> Sites;
};

/// A parsed file: file-scope constants plus function definitions.
struct TranslationUnit {
  std::vector<std::unique_ptr<VarDecl>> Globals;
  std::vector<std::unique_ptr<FunctionDecl>> Functions;

  /// Total conditional sites numbered by Sema across all functions.
  unsigned NumSites = 0;

  /// Bytes of global storage (constants and tables); set by Sema.
  unsigned GlobalBytes = 0;

  /// Returns the function named \p Name, or null.
  const FunctionDecl *findFunction(const std::string &Name) const;

  /// Returns the file-scope variable named \p Name, or null.
  const VarDecl *findGlobal(const std::string &Name) const;
};

} // namespace lang
} // namespace coverme

#endif // COVERME_LANG_AST_H
