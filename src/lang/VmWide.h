//===- VmWide.h - Lane model for the VM's SIMD wide batch lane ------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lane and mask model behind the bytecode VM's wide batch execution
/// (VmWide.cpp / VmWideBody.inc): structure-of-arrays state that runs
/// kWideLanes probes per instruction over the typed bytecode, one AVX2
/// `__m256d` per operand-stack slot. This header is deliberately plain
/// C++ — no intrinsics, no target-feature requirements — so the scalar VM,
/// tests, benches, and a future JIT vector-fragment tier can all share the
/// layout while only the one -mavx2 translation unit touches vectors.
///
/// Lane model
///   A batch row occupies lane L of every wide slot. Each 64-bit operand
///   slot of the scalar VM widens to a 32-byte WideSlot holding the four
///   lanes' values side by side, so a wide double add is a single vaddpd
///   and per-lane integer/builtin work indexes `Slot.L[Lane]`.
///
/// Divergence and retirement
///   Execution carries a LaneMask of still-active lanes; the leader is the
///   lowest active lane. At a conditional the lanes that disagree with the
///   leader's direction *retire*: they are silently dropped from the mask
///   and their rows re-run from scratch on the scalar boundProbe path,
///   which makes per-row result bits, branch traces, and trap messages
///   identical to scalar execution by construction. Per-lane traps (OOB,
///   division by zero, ...) retire the same way; uniform traps (step
///   budget, call-depth/stack guards) retire every active lane at once.
///
/// Frame arena layout
///   Sema 8-aligns every frame slot (params, locals, spill cells), so the
///   wide frame arena interleaves lanes at 8-byte-granule granularity:
///   logical frame byte Off of lane L lives at physical byte
///   laneByte(Off, L) = (Off/8)*32 + L*8 + (Off%8). An aligned 8-byte
///   frame access for all four lanes is then one 32-byte vector op, while
///   sub-granule (4-byte int) accesses stay per-lane. A *checked* access
///   that would straddle a granule boundary retires its lane instead —
///   scalar re-execution handles the exotic layout.
///
/// Instrumentation hooks
///   rt::cond outcomes are pure in (Site, Op, A, B); only the context's
///   accumulation (r, trace, coverage) is stateful. The wide loop
///   therefore *records* per-lane WideHookRec entries in execution order
///   and the batch driver *replays* each completed row's log into the
///   ExecutionContext in scalar row order, so FOO_R values and traces are
///   bit-identical to row-at-a-time execution.
///
///   For the dominant context configuration — pen on, trace on, no
///   coverage sink, no operand recording, i.e. exactly what a minimizer's
///   FOO_R evaluation installs — the hooks take a faster route: the
///   saturation table is never mutated during a batch, so pen's value per
///   site is a pure function the cond-site handler computes lane by lane
///   as it executes (tracking each lane's running r and pre-formed trace
///   entries in WideState), and "replay" collapses to assigning the
///   finished r and trace into the context. Same observable end state,
///   none of the per-site call overhead.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_LANG_VMWIDE_H
#define COVERME_LANG_VMWIDE_H

#include "lang/Bytecode.h"
#include "runtime/BranchDistance.h"
#include "runtime/Program.h" // BranchRef

#include <cstddef>
#include <cstdint>
#include <vector>

namespace coverme {

class SaturationTable; // runtime/SaturationTable.h

namespace lang {
namespace bc {
namespace wide {

/// Rows executed per wide instruction: one AVX2 vector of doubles.
constexpr unsigned kWideLanes = 4;

/// One operand-stack slot or frame granule, widened across the lanes.
/// 32-byte aligned so vector loads/stores of a whole slot are aligned.
struct alignas(32) WideSlot {
  Slot L[kWideLanes];
};

/// Bitset of still-active lanes; bit L is lane L.
using LaneMask = uint8_t;

constexpr LaneMask kAllLanes = static_cast<LaneMask>((1u << kWideLanes) - 1);

constexpr LaneMask laneBit(unsigned Lane) {
  return static_cast<LaneMask>(1u << Lane);
}

/// The leader lane: lowest set bit. Precondition: M != 0.
inline unsigned lowestLane(LaneMask M) {
#if defined(__GNUC__) || defined(__clang__)
  return static_cast<unsigned>(__builtin_ctz(M));
#else
  unsigned L = 0;
  while (!(M & (1u << L)))
    ++L;
  return L;
#endif
}

/// Physical byte of logical frame byte \p Off in lane \p Lane under the
/// interleaved-granule layout described in the file header.
inline size_t laneByte(uint32_t Off, unsigned Lane) {
  return ((static_cast<size_t>(Off) >> 3) << 5) +
         (static_cast<size_t>(Lane) << 3) + (Off & 7u);
}

/// First physical byte of the 32-byte granule holding logical byte \p Off
/// — the address a whole-granule (all-lane) vector access uses.
inline size_t granuleByte(uint32_t Off) {
  return (static_cast<size_t>(Off) >> 3) << 5;
}

/// One recorded rt::cond firing for one lane: everything the hook's
/// outcome and the context's accumulation depend on. Replayed per row in
/// scalar row order after the wide run completes.
struct WideHookRec {
  uint32_t Site;
  CmpOp Op;
  double A;
  double B;
};

/// One cond-site firing in fast hook mode, shared across lanes: active
/// lanes execute the same site sequence (divergent lanes retire), so the
/// trace differs between lanes only in the outcome bit. Bit L of Outcomes
/// is lane L's `a op b` (a vmovmskpd of the packed compare); bits of lanes
/// already retired at record time are garbage and never read — a lane that
/// finishes wide was active at every record.
struct WideCondRec {
  uint32_t Site;
  uint8_t Outcomes;
};

/// Per-Vm wide execution state, allocated lazily on the first wide batch.
/// Mirrors the scalar Vm's OpStack/FrameMem pair in structure-of-arrays
/// form; Frames/FrameTop/StepsLeft stay shared with the scalar VM because
/// call structure and budget are lockstep-uniform across active lanes.
struct WideState {
  /// Wide operand stack, kOpStackSlots entries (sized once).
  std::vector<WideSlot> Stack;
  /// Interleaved frame arena in 32-byte granules; granule G holds logical
  /// bytes [8G, 8G+8) of all four lanes. Zero-filled on growth so the
  /// scalar arena's resize(Needed, 0) trajectory is reproduced per lane.
  std::vector<WideSlot> Frame;
  /// Logical per-lane frame size in bytes (the scalar FrameMem.size()
  /// equivalent); bytes in [FrameBytes, 8*Frame.size()) stay zero.
  uint32_t FrameBytes = 0;
  /// Per-lane instrumentation logs for the current probe group (generic
  /// record-and-replay mode).
  std::vector<WideHookRec> HookLog[kWideLanes];
  /// Per-lane converted return values for lanes that completed wide.
  double Result[kWideLanes] = {};

  /// Fast hook mode (see the file header): the cond-site handlers read
  /// the batch's frozen saturation state and epsilon from here, track
  /// each lane's running r in RWide, and log one CondLog entry per fired
  /// site, so finishing a row is one assignment plus a trace expansion
  /// instead of a replay.
  const SaturationTable *Table = nullptr;
  double Epsilon = 0.0;
  WideSlot RWide = {};
  std::vector<WideCondRec> CondLog;
  /// Wide-JIT fast mode only (JitWide.cpp): the batch's per-site
  /// saturation snapshot, 2 bits per site (TrueArm | FalseArm << 1),
  /// frozen before the group loop so the native pen block reads plain
  /// bytes instead of calling into the table.
  std::vector<uint8_t> SatSnap;
};

} // namespace wide
} // namespace bc
} // namespace lang
} // namespace coverme

#endif // COVERME_LANG_VMWIDE_H
