//===- JitWide.cpp - 4-lane AVX2 fragment family + wide batch driver ------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
// The wide half of the copy-and-patch JIT (see lang/JitWide.h): every
// bytecode instruction lowers to a fixed native fragment executing all
// four lanes of the SIMD batch lane's structure-of-arrays state — double
// arithmetic and the fused superinstructions as one 256-bit VEX op per
// instruction, integer/pointer/builtin work as per-lane scalar fallout,
// and the FOO_R cond-site hook as the vectorized pen fast path (packed
// compare + movemask outcome recording, Def-4.2 penalty in vector
// registers, trace/r materialized once per group by the driver).
//
// Bit-identity is inherited from the two proven layers this composes:
//  * Arithmetic recipes mirror the interpreted wide lane (VmWideBody.inc /
//    VmWide.cpp) shape for shape — vaddpd-family packed ops match
//    lang/FpSemantics.h's pinned SSE NaN rule, the penalty sequence is the
//    same FMA-free sub/mul/add order as wideDist, and integer / builtin /
//    conversion work calls the very detail:: helpers every tier shares.
//  * Divergence reuses the wide lane's retirement protocol exactly: at a
//    branch the leader (lowest active) lane's direction is consensus and
//    disagreeing lanes drop from the mask; per-lane traps retire the lane
//    silently; budget shortfall, TrapOp, global stores and hook-log
//    overflow retire the whole group. Retired rows re-run scalar from
//    scratch (scalar JIT fragment, then interpreter), the path whose bits
//    define correct.
//  * Step budgeting replays the VM's block-granular schedule: the driver
//    hoists the thunk charge exactly like jitProbe (StepsAfterThunk), and
//    the fragment charges BlockCost on the same edges as the scalar
//    fragment — entry, every jump/branch edge, the return-to-thunk edge —
//    so exhaustion points are identical across all four tiers.
//
// Fragment ABI (JitWideFrame offsets are hard-coded; see lang/JitWide.h):
//   rdi on entry = JitWideFrame*    rbp = JitWideFrame* (saved)
//   rbx = wide frame arena (FW)     r13 = GMem base
//   r15 = DoublePool base           r14 = StepsLeft
//   r12d = active lane mask
//   wide operand slot i lives at [rsp + i*32] (rsp is 32-aligned by the
//   prologue; the original rsp is spilled to the frame). One extra 32-byte
//   granule above the slots serves as broadcast scratch.
// Scratch: rax rcx rdx rsi rdi r8-r11, ymm0-ymm5 — caller-saved, and no
// operand value is live in a register across an instruction boundary.
//
//===----------------------------------------------------------------------===//

#include "lang/JitWide.h"

#include "lang/Jit.h"
#include "lang/Vm.h"
#include "runtime/ExecutionContext.h"
#include "runtime/SaturationTable.h"

#include <cassert>
#include <cstring>
#include <limits>

using namespace coverme;
using namespace coverme::lang;
using namespace coverme::lang::bc;
using namespace coverme::lang::bc::jit;

// The wide emitter needs both the JIT and the SIMD lane compiled in: the
// fragments execute over VmWide's lane-interleaved state and retire rows
// to the scalar JIT fragments. Host AVX2 is a separate runtime question
// (Vm::simdAvailable gates binding, not emission).
#if defined(COVERME_JIT) && defined(COVERME_VM_SIMD) &&                        \
    defined(__x86_64__) && (defined(__unix__) || defined(__APPLE__))
#define COVERME_JIT_WIDE_ENABLED 1
#else
#define COVERME_JIT_WIDE_ENABLED 0
#endif

namespace coverme {
namespace lang {
namespace bc {
namespace detail {
// Defined in Vm.cpp; shared verbatim so the tiers cannot drift.
int32_t truncToInt32(double V);
uint32_t truncToUInt32(double V);
} // namespace detail
} // namespace bc
} // namespace lang
} // namespace coverme

#if COVERME_JIT_WIDE_ENABLED

// C bridges the per-lane fallout calls — defined in Jit.cpp (the gate
// above implies COVERME_JIT_ENABLED there).
extern "C" {
double covermeJitBuiltin(uint32_t Id, double A, double B);
double covermeJitScalbn(double A, int32_t N);
uint64_t covermeJitD2I(double V);
uint64_t covermeJitD2U(double V);
}

namespace {

// JitWideFrame field offsets (static_asserted against the struct below).
enum : int32_t {
  JwFW = 0,
  JwGMem = 8,
  JwPool = 16,
  JwSteps = 24,
  JwActive = 32,
  JwSavedRsp = 40,
  JwResult = 48,
  JwSatFlags = 80,
  JwEpsilon = 88,
  JwRWide = 96,
  JwCondLog = 104,
  JwCondCount = 112,
  JwCondCap = 120,
};

static_assert(offsetof(JitWideFrame, FW) == JwFW, "ABI drift");
static_assert(offsetof(JitWideFrame, GMem) == JwGMem, "ABI drift");
static_assert(offsetof(JitWideFrame, Pool) == JwPool, "ABI drift");
static_assert(offsetof(JitWideFrame, StepsLeft) == JwSteps, "ABI drift");
static_assert(offsetof(JitWideFrame, Active) == JwActive, "ABI drift");
static_assert(offsetof(JitWideFrame, SavedRsp) == JwSavedRsp, "ABI drift");
static_assert(offsetof(JitWideFrame, ResultBits) == JwResult, "ABI drift");
static_assert(offsetof(JitWideFrame, SatFlags) == JwSatFlags, "ABI drift");
static_assert(offsetof(JitWideFrame, Epsilon) == JwEpsilon, "ABI drift");
static_assert(offsetof(JitWideFrame, RWide) == JwRWide, "ABI drift");
static_assert(offsetof(JitWideFrame, CondLog) == JwCondLog, "ABI drift");
static_assert(offsetof(JitWideFrame, CondCount) == JwCondCount, "ABI drift");
static_assert(offsetof(JitWideFrame, CondCap) == JwCondCap, "ABI drift");
static_assert(sizeof(wide::WideCondRec) == 8, "CondLog stride is baked in");

/// vcmppd predicate for a CmpOp, NaN semantics included: ordered-quiet
/// for the ordered comparisons (NaN compares false), unordered-quiet for
/// NE (NaN compares true) — exactly wideCmp in VmWide.cpp.
inline uint8_t vcmpPred(CmpOp Op) {
  switch (Op) {
  case CmpOp::EQ:
    return 0x00; // EQ_OQ
  case CmpOp::NE:
    return 0x04; // NEQ_UQ
  case CmpOp::LT:
    return 0x11; // LT_OQ
  case CmpOp::LE:
    return 0x12; // LE_OQ
  case CmpOp::GT:
    return 0x1E; // GT_OQ
  case CmpOp::GE:
    return 0x1D; // GE_OQ
  }
  return 0x00;
}

//===----------------------------------------------------------------------===//
// Per-function wide emitter
//===----------------------------------------------------------------------===//

class FnWideEmitter {
public:
  FnWideEmitter(const CompiledUnit &U, const FunctionInfo &F, Asm &A)
      : U(U), F(F), A(A) {}

  /// Analyzes and emits; false leaves the caller to roll the buffer back.
  bool run() {
    FragAnalysis FA;
    FA.analyze(U, F);
    if (wideFragRejection(U, F, FA))
      return false;
    Depth = std::move(FA.Depth);
    MaxDepth = FA.MaxDepth;
    FrameDisp = FA.FrameDisp;
    FrameLimit = FA.FrameLimit;
    GlobalLimit = FA.GlobalLimit;
    // Wide slots are 4x the scalar ones; keep every baked displacement
    // comfortably inside imm32 (the analysis only guarded the scalar 8x).
    if (static_cast<uint64_t>(MaxDepth) * 32 + 32 > 0x7fff0000ull)
      return false;
    if (FrameLimit * 4 + 64 > 0x7fff0000ull)
      return false;
    if (GlobalLimit > 0x7fff0000ull)
      return false;
    ScratchOff = MaxDepth * 32;
    StackAdjW = static_cast<uint32_t>(MaxDepth + 1) * 32;
    return emit();
  }

private:
  const CompiledUnit &U;
  const FunctionInfo &F;
  Asm &A;

  std::vector<int> Depth;  ///< Operand depth before each PC; -1 dead.
  int MaxDepth = 0;
  uint32_t FrameDisp = 0;  ///< CurBase for an entry call (= CellBytes).
  uint64_t FrameLimit = 0; ///< Logical per-lane frame bytes.
  uint64_t GlobalLimit = 0;
  int32_t ScratchOff = 0;  ///< Broadcast scratch granule above the slots.
  uint32_t StackAdjW = 0;  ///< Prologue rsp adjustment (32-aligned).

  std::vector<size_t> CodeOff;
  struct Fixup {
    size_t Pos;
    uint32_t TargetPC;
  };
  std::vector<Fixup> JumpFix;    ///< rel32 -> CodeOff[TargetPC]
  std::vector<size_t> RetireFix; ///< jumps to the retire-all epilogue
  std::vector<size_t> ExitFix;   ///< jumps to the epilogue (mask kept)

  // Wide operand slot / lane displacements off rsp.
  static int32_t wslot(int D) { return D * 32; }
  static int32_t wlane(int D, unsigned L) {
    return D * 32 + static_cast<int32_t>(L) * 8;
  }
  // Frame granule / lane displacements off rbx (the interleaved arena).
  int32_t fgran(uint32_t Off) const {
    return static_cast<int32_t>(wide::granuleByte(FrameDisp + Off));
  }
  int32_t flane(uint32_t Off, unsigned L) const {
    return static_cast<int32_t>(wide::laneByte(FrameDisp + Off, L));
  }

  // ---- emission helpers -------------------------------------------------

  void jccRetire(unsigned CC) { RetireFix.push_back(A.jcc32(CC)); }
  void jmpRetire() { RetireFix.push_back(A.jmp32()); }

  // The wide VM_CHARGE: a block that does not fit the remaining budget
  // retires every active lane (VMW_ALL_RETIRED) — never a trap; the rows
  // re-run scalar and exhaust at the identical point. r14 = StepsLeft.
  void charge(uint32_t TargetPC) {
    uint32_t C = U.BlockCost[TargetPC];
    if (C == 0)
      return;
    A.cmpRI64(R14, C);
    jccRetire(CC_B);
    A.subRI64(R14, C);
  }

  void jmpTo(uint32_t TargetPC) { JumpFix.push_back({A.jmp32(), TargetPC}); }

  void callBridge(const void *Fn) {
    A.movRI64(RAX, reinterpret_cast<uint64_t>(Fn));
    A.callR(RAX);
  }

  // Retire lanes whose bits cleared since the last branch; all gone ->
  // exit with Active = 0 (the whole group re-runs scalar).
  void deadCheck() {
    A.testRR32(R12, R12);
    jccRetire(CC_E);
  }

  // Broadcast rax into all four lanes of wide slot D (via the scratch
  // granule; vbroadcastsd has no GP-register source form).
  void bcastRaxToSlot(int D) {
    A.movMR64(RSP, ScratchOff, RAX);
    A.vbroadcastsdYM(0, RSP, ScratchOff);
    A.vmovapdMY(RSP, wslot(D), 0);
  }

  // ---- pinned packed constants ------------------------------------------
  //
  // ymm15 = all-ones and ymm14 = zero live for the whole fragment: every
  // other packed constant the integer recipes need (sign bit, shift mask,
  // space-tag mask, abs mask) is one immediate shift away from ymm15.
  // Bridge calls clobber every vector register, so each bridge cluster
  // re-emits this two-instruction sequence on its way out.
  void emitPinnedConsts() {
    A.vpiYYY(0x76, 15, 15, 15); // vpcmpeqd: all-ones
    A.vpiYYY(0xEF, 14, 14, 14); // vpxor: zero
  }

  // Canonicalize a packed int32 result exactly like the lane-wise recipes
  // it replaces: each 64-bit lane's low dword is the value; rewrite the
  // high dword with the value's sign (Int, the movsxd) or with zero
  // (UInt, the implicit 32-bit zero extension). Clobbers \p S.
  void sext32(unsigned V, unsigned S) {
    A.vpshufdYI(V, V, 0xA0);       // [v0 v0 v2 v2] per 128-bit half
    A.vpsradYI(S, V, 31);          // [s0 s0 s2 s2]
    A.vpblenddYYYI(V, V, S, 0xAA); // [v0 s0 v2 s2]
  }
  void zext32(unsigned V) { A.vpblenddYYYI(V, V, 14, 0xAA); }

  // Exact packed int64 -> double via the 2^52 + 2^51 magic constant:
  // valid for lanes within +/-2^51, and every canonical int lane is in
  // (-2^31, 2^32) — the same exact result as the per-row cvtsi2sd. Leaves
  // the converted doubles in ymm\p V; clobbers ymm\p S and the scratch
  // granule.
  void emitInt64ToDouble(unsigned V, unsigned S) {
    A.movRI64(RAX, 0x4338000000000000ull); // the bits of 2^52 + 2^51
    A.movMR64(RSP, ScratchOff, RAX);
    A.vbroadcastsdYM(S, RSP, ScratchOff);
    A.vpiYYY(0xD4, V, V, S); // vpaddq: mantissa-encode 2^52 + 2^51 + v
    A.vpdYYY(0x5C, V, V, S); // vsubpd the magic back out — exact
  }

  // VMW_BRANCH, with the taken-lane mask in eax (bits 0..3; higher bits
  // must be clear): lanes agreeing with the leader continue, the rest
  // retire. The leader always survives, so no dead-check is needed, and
  // both edges charge their target block exactly like the VM.
  void emitBranch(uint32_t TargetPC, uint32_t FallPC) {
    A.aluRR32(0x21, RAX, R12); // taken &= active
    A.movRR32(RCX, R12);
    A.negR32(RCX);
    A.aluRR32(0x21, RCX, R12); // ecx = active & -active (the leader bit)
    A.testRR32(RAX, RCX);
    size_t JNot = A.jcc32(CC_E);
    A.movRR32(R12, RAX); // leader takes the branch: active = taken
    charge(TargetPC);
    jmpTo(TargetPC);
    A.bindLocal(JNot);
    A.notR32(RAX);
    A.aluRR32(0x21, R12, RAX); // active &= ~taken
    charge(FallPC);
    // fall through to FallPC's code
  }

  // The packed Def-4.1 branch distance: same FP ops in the same order as
  // VmWide.cpp's wideDist (itself pinned to BranchDistance.cpp's scalar
  // mul-then-add shapes) — and since these are hand-picked vaddpd/vmulpd
  // bytes, no compiler can ever contract them into FMA. In: A = ymm1,
  // B = ymm2. Out: ymm3. Scratch: ymm4, ymm5.
  void emitWideDist(CmpOp Op) {
    unsigned Va = 1, Vb = 2;
    if (Op == CmpOp::GE) {
      Op = CmpOp::LE;
      std::swap(Va, Vb);
    } else if (Op == CmpOp::GT) {
      Op = CmpOp::LT;
      std::swap(Va, Vb);
    }
    switch (Op) {
    case CmpOp::EQ:
      A.vpdYYY(0x5C, 3, Va, Vb); // diff = a - b
      A.vpdYYY(0x59, 3, 3, 3);   // diff * diff
      break;
    case CmpOp::NE:
      A.vbroadcastsdYM(5, RBP, JwEpsilon);
      A.vcmppdYYY(4, Va, Vb, 0x04);
      A.vpdYYY(0x55, 3, 4, 5); // andnot(a != b, eps)
      break;
    case CmpOp::LE:
      A.vcmppdYYY(4, Va, Vb, 0x12);
      A.vpdYYY(0x5C, 3, Va, Vb);
      A.vpdYYY(0x59, 3, 3, 3);
      A.vpdYYY(0x55, 3, 4, 3); // andnot(a <= b, diff * diff)
      break;
    case CmpOp::LT:
      A.vbroadcastsdYM(5, RBP, JwEpsilon);
      A.vcmppdYYY(4, Va, Vb, 0x11);
      A.vpdYYY(0x5C, 3, Va, Vb);
      A.vpdYYY(0x59, 3, 3, 3);
      A.vpdYYY(0x58, 3, 3, 5); // diff * diff + eps
      A.vpdYYY(0x55, 3, 4, 3);
      break;
    case CmpOp::GT:
    case CmpOp::GE:
      break; // rewritten above
    }
  }

  // The vectorized FOO_R pen hook (widePen in VmWide.cpp): append one
  // CondLog record with this site's packed outcome bits, then replace the
  // wide running r per Definition 4.2 against the batch's frozen per-site
  // saturation snapshot. Null SatFlags = no context installed: the hook
  // vanishes (WideCtxNone). Preserves eax (the outcome mask, which branch
  // forms consume next) and ymm0-ymm2; uses rcx/rdx/rsi and ymm3-ymm5.
  // In: A = ymm1, B = ymm2, movemask of the site's compare in eax.
  void emitPenBlock(uint32_t Site, CmpOp Op) {
    A.movRM64(RCX, RBP, JwSatFlags);
    A.testRR64(RCX, RCX);
    size_t JNoCtx = A.jcc32(CC_E);
    // CondLog[CondCount++] = {Site, outcome bits}; a full log retires the
    // group (the scalar re-runs rebuild the trace row by row).
    A.movRM64(RDX, RBP, JwCondCount);
    A.aluRM64(0x3B, RDX, RBP, JwCondCap);
    jccRetire(CC_AE);
    A.movRR64(RSI, RDX);
    A.shlRI64(RSI, 3); // sizeof(WideCondRec)
    A.aluRM64(0x03, RSI, RBP, JwCondLog);
    A.movMI32(RSI, 0, Site);
    A.movMR8(RSI, 4, RAX); // Outcomes = al
    A.addRI64(RDX, 1);
    A.movMR64(RBP, JwCondCount, RDX);
    // Arm flags: bit 0 = true arm saturated, bit 1 = false arm saturated.
    A.movzxR32M8(RDX, RCX, static_cast<int32_t>(Site));
    A.cmpRI32(RDX, 3);
    size_t JKeep = A.jcc32(CC_E); // both arms: keep the previous r
    A.testRR32(RDX, RDX);
    size_t JSome = A.jcc32(CC_NE);
    A.vxorpdYYY(3, 3, 3); // neither arm: r = 0
    size_t JStore1 = A.jmp32();
    A.bindLocal(JSome);
    A.cmpRI32(RDX, 2);
    size_t JDistOp = A.jcc32(CC_E); // only false arm: dist(Op)
    emitWideDist(negateCmpOp(Op));  // only true arm: dist(negate(Op))
    size_t JStore2 = A.jmp32();
    A.bindLocal(JDistOp);
    emitWideDist(Op);
    A.bindLocal(JStore1);
    A.bindLocal(JStore2);
    A.movRM64(RCX, RBP, JwRWide);
    A.vmovapdMY(RCX, 0, 3);
    A.bindLocal(JNoCtx);
    A.bindLocal(JKeep);
  }

  // Per-lane Vm::resolve over the interleaved arena — the native form of
  // wideResolveLane: a lane whose pointer is null/garbage, out of bounds,
  // granule-straddling, or a global store pushes a fixup onto \p LaneFail
  // (the caller retires the lane); on success the final lane address is
  // in rsi. Clobbers rax, rcx, rdx.
  void emitResolveLane(int Dp, unsigned L, unsigned Size, bool IsStore,
                       std::vector<size_t> &LaneFail) {
    A.movRM64(RAX, RSP, wlane(Dp, L));
    A.movRR64(RCX, RAX);
    A.shrRI64(RCX, 56);
    A.cmpRI32(RCX, 2);
    size_t JFrame = A.jcc32(CC_E);
    A.cmpRI32(RCX, 1);
    LaneFail.push_back(A.jcc32(CC_NE)); // null or garbage tag
    size_t JDone = SIZE_MAX;
    if (IsStore || GlobalLimit < Size) {
      // The wide group shares one read-only global image: any global
      // store retires the lane and the row re-runs scalar.
      LaneFail.push_back(A.jmp32());
    } else {
      A.movRR32(RDX, RAX);
      A.cmpRI32(RDX, static_cast<uint32_t>(GlobalLimit - Size));
      LaneFail.push_back(A.jcc32(CC_A));
      A.movRR64(RSI, R13);
      A.aluRR64(0x01, RSI, RDX);
      JDone = A.jmp32();
    }
    A.bindLocal(JFrame);
    A.movRR32(RDX, RAX);
    if (FrameLimit < Size) {
      LaneFail.push_back(A.jmp32());
    } else {
      A.cmpRI32(RDX, static_cast<uint32_t>(FrameLimit - Size));
      LaneFail.push_back(A.jcc32(CC_A));
      // Granule-straddle check ((Off & 7) + Size > 8): the wide layout
      // cannot express it; scalar re-execution handles the exotic case.
      if (Size == 8) {
        A.testRI32(RDX, 7);
        LaneFail.push_back(A.jcc32(CC_NE));
      } else {
        A.movRR32(RCX, RDX);
        A.andRI32(RCX, 7);
        A.cmpRI32(RCX, 4);
        LaneFail.push_back(A.jcc32(CC_A));
      }
      // rsi = FW + (Off/8)*32 + L*8 + (Off%7... Off&7)
      A.movRR32(RSI, RDX);
      A.shrRI32(RSI, 3);
      A.shlRI32(RSI, 5);
      A.andRI32(RDX, 7);
      A.aluRR32(0x01, RSI, RDX);
      if (L)
        A.aluRI32(0, RSI, L * 8);
      A.aluRR64(0x01, RSI, RBX);
    }
    if (JDone != SIZE_MAX)
      A.bindLocal(JDone);
  }


  bool emit() {
    size_t N = U.Code.size();
    CodeOff.assign(N, SIZE_MAX);
    // Prologue. Entry rsp % 16 == 8; after the spill-and-align dance rsp
    // is 32-aligned (wide slots are vmovapd'd), which also keeps every
    // bridge call site 16-aligned.
    A.push(RBP);
    A.push(RBX);
    A.push(R12);
    A.push(R13);
    A.push(R14);
    A.push(R15);
    A.movRR64(RBP, RDI);
    A.movMR64(RBP, JwSavedRsp, RSP);
    A.aluRI64(4, RSP, 0xffffffe0u); // and rsp, -32
    A.subRI64(RSP, StackAdjW);
    A.movRM64(RBX, RBP, JwFW);
    A.movRM64(R13, RBP, JwGMem);
    A.movRM64(R15, RBP, JwPool);
    A.movRM64(R14, RBP, JwSteps);
    A.movRM64(R12, RBP, JwActive);
    emitPinnedConsts();
    charge(F.Entry); // the VM's VM_JUMP(F.Entry) edge at the entry Call
    for (uint32_t PC = 0; PC < N; ++PC) {
      if (Depth[PC] < 0)
        continue;
      CodeOff[PC] = A.pos();
      if (!emitInsn(PC))
        return false;
    }
    // Retire-all: budget shortfall, TrapOp, global effects, log overflow.
    size_t RetireAll = A.pos();
    for (size_t P : RetireFix)
      A.patch32(P, RetireAll);
    A.aluRR32(0x31, R12, R12); // active = 0; fall into the epilogue
    size_t Exit = A.pos();
    for (size_t P : ExitFix)
      A.patch32(P, Exit);
    A.movMR64(RBP, JwSteps, R14);
    A.movMR64(RBP, JwActive, R12);
    A.vzeroupper();
    A.movRM64(RSP, RBP, JwSavedRsp);
    A.pop(R15);
    A.pop(R14);
    A.pop(R13);
    A.pop(R12);
    A.pop(RBX);
    A.pop(RBP);
    A.ret();
    for (const Fixup &J : JumpFix) {
      if (J.TargetPC >= N || CodeOff[J.TargetPC] == SIZE_MAX)
        return false;
      A.patch32(J.Pos, CodeOff[J.TargetPC]);
    }
    return true;
  }

  bool emitInsn(uint32_t PC) {
    const Insn &I = U.Code[PC];
    int D = Depth[PC];
    switch (I.Code) {
    // ---- constants ------------------------------------------------------
    case Op::ConstD:
      A.vbroadcastsdYM(0, R15, static_cast<int32_t>(I.A * 8));
      A.vmovapdMY(RSP, wslot(D), 0);
      return true;
    case Op::ConstI:
      A.movRI64(RAX, static_cast<uint64_t>(
                         static_cast<int64_t>(static_cast<int32_t>(I.A))));
      bcastRaxToSlot(D);
      return true;
    case Op::ConstU:
      A.movRI32(RAX, I.A);
      bcastRaxToSlot(D);
      return true;

    // ---- stack shuffling ------------------------------------------------
    case Op::Pop:
      return true;
    case Op::Dup:
      A.vmovapdYM(0, RSP, wslot(D - 1));
      A.vmovapdMY(RSP, wslot(D), 0);
      return true;
    case Op::Swap:
      A.vmovapdYM(0, RSP, wslot(D - 1));
      A.vmovapdYM(1, RSP, wslot(D - 2));
      A.vmovapdMY(RSP, wslot(D - 1), 1);
      A.vmovapdMY(RSP, wslot(D - 2), 0);
      return true;
    case Op::Rot:
      A.vmovapdYM(0, RSP, wslot(D - 3));
      A.vmovapdYM(1, RSP, wslot(D - 2));
      A.vmovapdYM(2, RSP, wslot(D - 1));
      A.vmovapdMY(RSP, wslot(D - 3), 1);
      A.vmovapdMY(RSP, wslot(D - 2), 2);
      A.vmovapdMY(RSP, wslot(D - 1), 0);
      return true;

    // ---- addresses ------------------------------------------------------
    case Op::AddrG:
      A.movRI64(RAX, encodePtr(Space::Global, I.A));
      bcastRaxToSlot(D);
      return true;
    case Op::AddrF:
      A.movRI64(RAX, encodePtr(Space::Frame, FrameDisp + I.A));
      bcastRaxToSlot(D);
      return true;

    // ---- checked accesses (per lane; failing lanes retire) --------------
    case Op::LoadI:
    case Op::LoadU:
    case Op::LoadD:
    case Op::LoadP: {
      unsigned Size = (I.Code == Op::LoadI || I.Code == Op::LoadU) ? 4 : 8;
      for (unsigned L = 0; L < wide::kWideLanes; ++L) {
        std::vector<size_t> LaneFail;
        emitResolveLane(D - 1, L, Size, /*IsStore=*/false, LaneFail);
        if (I.Code == Op::LoadI)
          A.movsxdRM(RAX, RSI, 0);
        else if (I.Code == Op::LoadU)
          A.movRM32(RAX, RSI, 0);
        else
          A.movRM64(RAX, RSI, 0);
        A.movMR64(RSP, wlane(D - 1, L), RAX);
        size_t JOk = A.jmp32();
        for (size_t P : LaneFail)
          A.bindLocal(P);
        A.andRI32(R12, ~static_cast<uint32_t>(wide::laneBit(L)));
        A.bindLocal(JOk);
      }
      deadCheck();
      return true;
    }
    case Op::StoreI:
    case Op::StoreU:
    case Op::StoreD:
    case Op::StoreP: {
      unsigned Size = (I.Code == Op::StoreI || I.Code == Op::StoreU) ? 4 : 8;
      for (unsigned L = 0; L < wide::kWideLanes; ++L) {
        std::vector<size_t> LaneFail;
        emitResolveLane(D - 2, L, Size, /*IsStore=*/true, LaneFail);
        if (Size == 4) {
          A.movRM32(RCX, RSP, wlane(D - 1, L));
          A.movMR32(RSI, 0, RCX);
        } else {
          A.movRM64(RCX, RSP, wlane(D - 1, L));
          A.movMR64(RSI, 0, RCX);
        }
        size_t JOk = A.jmp32();
        for (size_t P : LaneFail)
          A.bindLocal(P);
        A.andRI32(R12, ~static_cast<uint32_t>(wide::laneBit(L)));
        A.bindLocal(JOk);
      }
      deadCheck();
      if (I.B) { // push the full value slot back (scalar StoreI/StoreD B)
        A.vmovapdYM(0, RSP, wslot(D - 1));
        A.vmovapdMY(RSP, wslot(D - 2), 0);
      }
      return true;
    }

    // ---- fused unchecked accesses ---------------------------------------
    case Op::LdFI:
    case Op::LdFU: {
      // A 4-byte frame cell is one half of its lane qword (the rejection
      // admits only aligned halves): load the granule packed, shift the
      // high half down when that's where the cell lives, recanonicalize.
      uint32_t In = (FrameDisp + I.A) & 7u;
      A.vmovapdYM(0, RBX, fgran(I.A));
      if (In)
        A.vpsrlqYI(0, 0, 32);
      if (I.Code == Op::LdFI)
        sext32(0, 1);
      else
        zext32(0);
      A.vmovapdMY(RSP, wslot(D), 0);
      return true;
    }
    case Op::LdFD:
    case Op::LdFP:
      A.vmovapdYM(0, RBX, fgran(I.A));
      A.vmovapdMY(RSP, wslot(D), 0);
      return true;
    // Globals are lane-uniform (one shared read-only image): load once,
    // broadcast.
    case Op::LdGI:
      A.movsxdRM(RAX, R13, static_cast<int32_t>(I.A));
      bcastRaxToSlot(D);
      return true;
    case Op::LdGU:
      A.movRM32(RAX, R13, static_cast<int32_t>(I.A));
      bcastRaxToSlot(D);
      return true;
    case Op::LdGD:
    case Op::LdGP:
      A.vbroadcastsdYM(0, R13, static_cast<int32_t>(I.A));
      A.vmovapdMY(RSP, wslot(D), 0);
      return true;
    case Op::StFI:
    case Op::StFU: {
      // Blend the value dwords into the granule, preserving each lane's
      // other 4-byte half.
      uint32_t In = (FrameDisp + I.A) & 7u;
      A.vmovapdYM(0, RSP, wslot(D - 1));
      A.vmovapdYM(1, RBX, fgran(I.A));
      if (In) {
        A.vpsllqYI(0, 0, 32);
        A.vpblenddYYYI(1, 1, 0, 0xAA);
      } else {
        A.vpblenddYYYI(1, 1, 0, 0x55);
      }
      A.vmovapdMY(RBX, fgran(I.A), 1);
      return true; // B: the slot simply stays
    }
    case Op::StFD:
    case Op::StFP:
      A.vmovapdYM(0, RSP, wslot(D - 1));
      A.vmovapdMY(RBX, fgran(I.A), 0);
      return true;
    case Op::StGI:
    case Op::StGU:
    case Op::StGD:
    case Op::StGP:
    case Op::ZeroG:
      // Unreachable in a wide-eligible function (wideFragRejection demands
      // WideSafe + !WritesGlobals); retire the group defensively.
      jmpRetire();
      return true;
    case Op::ZeroF: {
      A.vxorpdYYY(0, 0, 0);
      uint32_t Off = FrameDisp + I.A;
      uint32_t Len = I.B;
      while (Len) {
        uint32_t In = Off & 7u;
        uint32_t Chunk = 8u - In < Len ? 8u - In : Len;
        if (Chunk == 8u) {
          A.vmovapdMY(RBX, static_cast<int32_t>(wide::granuleByte(Off)), 0);
        } else {
          // wideFragRejection admitted only aligned 4-byte halves here.
          for (unsigned L = 0; L < wide::kWideLanes; ++L)
            A.movMI32(RBX, static_cast<int32_t>(wide::laneByte(Off, L)), 0);
        }
        Off += Chunk;
        Len -= Chunk;
      }
      return true;
    }

    // ---- double arithmetic (one packed op for all lanes) ----------------
    case Op::AddD:
    case Op::SubD:
    case Op::MulD:
    case Op::DivD: {
      uint8_t Opc = I.Code == Op::AddD   ? 0x58
                    : I.Code == Op::SubD ? 0x5C
                    : I.Code == Op::MulD ? 0x59
                                         : 0x5E;
      A.vmovapdYM(0, RSP, wslot(D - 2));
      A.vpdYYM(Opc, 0, 0, RSP, wslot(D - 1));
      A.vmovapdMY(RSP, wslot(D - 2), 0);
      return true;
    }
    case Op::NegD:
      A.vpsllqYI(1, 15, 63); // the sign-bit mask
      A.vmovapdYM(0, RSP, wslot(D - 1));
      A.vpdYYY(0x57, 0, 0, 1); // xor: flip the sign bit, NaN included
      A.vmovapdMY(RSP, wslot(D - 1), 0);
      return true;

    // ---- integer arithmetic (packed: 32-bit dword ops, then the lane
    // high dwords recanonicalized by signedness) -------------------------
    case Op::AddI:
    case Op::SubI:
    case Op::MulI:
    case Op::AddU:
    case Op::SubU:
    case Op::MulU: {
      bool Signed = I.Code == Op::AddI || I.Code == Op::SubI ||
                    I.Code == Op::MulI;
      bool Mul = I.Code == Op::MulI || I.Code == Op::MulU;
      bool Add = I.Code == Op::AddI || I.Code == Op::AddU;
      A.vmovapdYM(0, RSP, wslot(D - 2));
      A.vmovapdYM(1, RSP, wslot(D - 1));
      if (Mul)
        A.vpi2YYY(0x40, 0, 0, 1); // vpmulld: the imul low-32 products
      else
        A.vpiYYY(Add ? 0xFE : 0xFA, 0, 0, 1); // vpaddd / vpsubd
      if (Signed)
        sext32(0, 1);
      else
        zext32(0);
      A.vmovapdMY(RSP, wslot(D - 2), 0);
      return true;
    }
    case Op::DivI:
    case Op::RemI: {
      bool Rem = I.Code == Op::RemI;
      for (unsigned L = 0; L < wide::kWideLanes; ++L) {
        A.movRM32(RAX, RSP, wlane(D - 2, L));
        A.movRM32(RCX, RSP, wlane(D - 1, L));
        A.testRR32(RCX, RCX);
        size_t JZero = A.jcc32(CC_E); // the scalar re-run traps
        // INT_MIN / -1 wraps (quotient INT_MIN, remainder 0), not #DE.
        A.cmpRI32(RAX, 0x80000000u);
        size_t JDo1 = A.jcc32(CC_NE);
        A.cmpRI32(RCX, 0xffffffffu);
        size_t JDo2 = A.jcc32(CC_NE);
        if (Rem)
          A.aluRR32(0x31, RAX, RAX);
        size_t JStore = A.jmp32();
        A.bindLocal(JDo1);
        A.bindLocal(JDo2);
        A.cdq();
        A.idivR32(RCX);
        if (Rem)
          A.movRR32(RAX, RDX);
        A.bindLocal(JStore);
        A.movsxdRR(RAX, RAX);
        A.movMR64(RSP, wlane(D - 2, L), RAX);
        size_t JOk = A.jmp32();
        A.bindLocal(JZero);
        A.andRI32(R12, ~static_cast<uint32_t>(wide::laneBit(L)));
        A.bindLocal(JOk);
      }
      deadCheck();
      return true;
    }
    case Op::DivU:
    case Op::RemU: {
      bool Rem = I.Code == Op::RemU;
      for (unsigned L = 0; L < wide::kWideLanes; ++L) {
        A.movRM32(RAX, RSP, wlane(D - 2, L));
        A.movRM32(RCX, RSP, wlane(D - 1, L));
        A.testRR32(RCX, RCX);
        size_t JZero = A.jcc32(CC_E);
        A.aluRR32(0x31, RDX, RDX);
        A.divR32(RCX);
        A.movMR64(RSP, wlane(D - 2, L), Rem ? RDX : RAX);
        size_t JOk = A.jmp32();
        A.bindLocal(JZero);
        A.andRI32(R12, ~static_cast<uint32_t>(wide::laneBit(L)));
        A.bindLocal(JOk);
      }
      deadCheck();
      return true;
    }
    case Op::NegI:
    case Op::NegU:
      A.vmovapdYM(0, RSP, wslot(D - 1));
      A.vpiYYY(0xFA, 0, 14, 0); // vpsubd: 0 - v, the 32-bit neg
      if (I.Code == Op::NegI)
        sext32(0, 1);
      else
        zext32(0);
      A.vmovapdMY(RSP, wslot(D - 1), 0);
      return true;
    case Op::ShlI:
    case Op::ShrI:
    case Op::ShlU:
    case Op::ShrU: {
      bool Signed = I.Code == Op::ShlI || I.Code == Op::ShrI;
      A.vmovapdYM(0, RSP, wslot(D - 2));
      A.vmovapdYM(1, RSP, wslot(D - 1));
      A.vpsrldYI(2, 15, 27);   // 31 in every dword
      A.vpiYYY(0xDB, 1, 1, 2); // count &= 31, the scalar cl-shift mask
      if (I.Code == Op::ShlI || I.Code == Op::ShlU)
        A.vpi2YYY(0x47, 0, 0, 1); // vpsllvd
      else if (I.Code == Op::ShrI)
        A.vpi2YYY(0x46, 0, 0, 1); // vpsravd: arithmetic, as Fdlibm assumes
      else
        A.vpi2YYY(0x45, 0, 0, 1); // vpsrlvd
      if (Signed)
        sext32(0, 1);
      else
        zext32(0);
      A.vmovapdMY(RSP, wslot(D - 2), 0);
      return true;
    }
    case Op::And32:
    case Op::Or32:
    case Op::Xor32: {
      uint8_t Opc = I.Code == Op::And32  ? 0xDB
                    : I.Code == Op::Or32 ? 0xEB
                                         : 0xEF; // vpand / vpor / vpxor
      A.vmovapdYM(0, RSP, wslot(D - 2));
      A.vmovapdYM(1, RSP, wslot(D - 1));
      A.vpiYYY(Opc, 0, 0, 1);
      zext32(0); // the scalar recipe stores its 32-bit result zero-extended
      A.vmovapdMY(RSP, wslot(D - 2), 0);
      return true;
    }
    case Op::NotI:
    case Op::NotU:
      A.vmovapdYM(0, RSP, wslot(D - 1));
      A.vpiYYY(0xEF, 0, 0, 15); // vpxor all-ones: the 32-bit not
      if (I.Code == Op::NotI)
        sext32(0, 1);
      else
        zext32(0);
      A.vmovapdMY(RSP, wslot(D - 1), 0);
      return true;

    // ---- truthiness -----------------------------------------------------
    case Op::BoolI:
    case Op::LogNotI:
      A.vmovapdYM(0, RSP, wslot(D - 1));
      A.vpcmpeqqYYY(0, 0, 14); // full 64-bit lane == 0
      if (I.Code == Op::BoolI)
        A.vpiYYY(0xEF, 0, 0, 15); // invert: the truthy lanes
      A.vpsrlqYI(0, 0, 63);
      A.vmovapdMY(RSP, wslot(D - 1), 0);
      return true;
    case Op::BoolD:
    case Op::LogNotD:
      // D != 0.0 (NaN: true) / D == 0.0 (NaN: false), packed: the compare
      // mask shifted down to canonical 0/1 int slots.
      A.vmovapdYM(0, RSP, wslot(D - 1));
      A.vxorpdYYY(1, 1, 1);
      A.vcmppdYYY(0, 0, 1, I.Code == Op::BoolD ? 0x04 : 0x00);
      A.vpsrlqYI(0, 0, 63);
      A.vmovapdMY(RSP, wslot(D - 1), 0);
      return true;
    case Op::BoolP:
    case Op::LogNotP:
      A.vmovapdYM(0, RSP, wslot(D - 1));
      A.vpsrlqYI(0, 0, 56);    // the space tag; zero = null
      A.vpcmpeqqYYY(0, 0, 14);
      if (I.Code == Op::BoolP)
        A.vpiYYY(0xEF, 0, 0, 15);
      A.vpsrlqYI(0, 0, 63);
      A.vmovapdMY(RSP, wslot(D - 1), 0);
      return true;

    // ---- conversions ----------------------------------------------------
    case Op::I2D:
    case Op::U2D:
      // Both convert the canonical int64 lane (a UInt lane is already
      // zero-extended), exactly what the per-row cvtsi2sd computed.
      A.vmovapdYM(0, RSP, wslot(D - 1));
      emitInt64ToDouble(0, 1);
      A.vmovapdMY(RSP, wslot(D - 1), 0);
      return true;
    case Op::D2I:
    case Op::D2U: {
      // The saturating conversions the VM compiles; pure, so retired-lane
      // garbage inputs are harmless and no masking is needed.
      const void *Fn = I.Code == Op::D2I
                           ? reinterpret_cast<const void *>(&covermeJitD2I)
                           : reinterpret_cast<const void *>(&covermeJitD2U);
      A.vzeroupper();
      for (unsigned L = 0; L < wide::kWideLanes; ++L) {
        A.movsdXM(0, RSP, wlane(D - 1, L));
        callBridge(Fn);
        A.movMR64(RSP, wlane(D - 1, L), RAX);
      }
      emitPinnedConsts(); // the bridge clobbered ymm14/ymm15
      return true;
    }
    case Op::I2U:
      A.vmovapdYM(0, RSP, wslot(D - 1));
      zext32(0); // low 32, zero-extended
      A.vmovapdMY(RSP, wslot(D - 1), 0);
      return true;
    case Op::U2I:
      A.vmovapdYM(0, RSP, wslot(D - 1));
      sext32(0, 1);
      A.vmovapdMY(RSP, wslot(D - 1), 0);
      return true;
    case Op::I2P:
      // Only 0 converts (the null pointer); a nonzero lane retires and
      // the scalar re-run reports the conversion trap.
      for (unsigned L = 0; L < wide::kWideLanes; ++L) {
        A.movRM64(RAX, RSP, wlane(D - 1, L));
        A.testRR64(RAX, RAX);
        size_t JBad = A.jcc32(CC_NE);
        A.movMI64s(RSP, wlane(D - 1, L), 0);
        size_t JOk = A.jmp32();
        A.bindLocal(JBad);
        A.andRI32(R12, ~static_cast<uint32_t>(wide::laneBit(L)));
        A.bindLocal(JOk);
      }
      deadCheck();
      return true;

    // ---- comparisons ----------------------------------------------------
    case Op::CmpD:
      A.vmovapdYM(1, RSP, wslot(D - 2));
      A.vmovapdYM(2, RSP, wslot(D - 1));
      A.vcmppdYYY(0, 1, 2, vcmpPred(static_cast<CmpOp>(I.A)));
      A.vpsrlqYI(0, 0, 63);
      A.vmovapdMY(RSP, wslot(D - 2), 0);
      return true;
    case Op::CmpI:
    case Op::CmpU:
    case Op::CmpP: {
      // Full 64-bit lane compares, canonical 0/1 results — evalCmpInt,
      // packed. Unsigned orderings bias both sides by the sign bit so the
      // (signed) vpcmpgtq orders them like an unsigned compare.
      CmpOp Op = static_cast<CmpOp>(I.A);
      bool Order = Op != CmpOp::EQ && Op != CmpOp::NE;
      A.vmovapdYM(1, RSP, wslot(D - 2));
      A.vmovapdYM(2, RSP, wslot(D - 1));
      if (I.Code != Op::CmpI && Order) {
        A.vpsllqYI(3, 15, 63);
        A.vpiYYY(0xEF, 1, 1, 3);
        A.vpiYYY(0xEF, 2, 2, 3);
      }
      bool Invert = false;
      switch (Op) {
      case CmpOp::EQ:
        A.vpcmpeqqYYY(0, 1, 2);
        break;
      case CmpOp::NE:
        A.vpcmpeqqYYY(0, 1, 2);
        Invert = true;
        break;
      case CmpOp::LT:
        A.vpi2YYY(0x37, 0, 2, 1); // b > a
        break;
      case CmpOp::GT:
        A.vpi2YYY(0x37, 0, 1, 2);
        break;
      case CmpOp::LE:
        A.vpi2YYY(0x37, 0, 1, 2); // !(a > b)
        Invert = true;
        break;
      case CmpOp::GE:
        A.vpi2YYY(0x37, 0, 2, 1); // !(b > a)
        Invert = true;
        break;
      }
      if (Invert)
        A.vpiYYY(0xEF, 0, 0, 15);
      A.vpsrlqYI(0, 0, 63);
      A.vmovapdMY(RSP, wslot(D - 2), 0);
      return true;
    }
    case Op::PNullCmp:
      A.vmovapdYM(0, RSP, wslot(D - 1));
      A.vpsrlqYI(0, 0, 56);
      A.vpcmpeqqYYY(0, 0, 14); // lanes whose tag is zero: null
      if (I.A == 0)
        A.vpiYYY(0xEF, 0, 0, 15); // the != null form
      A.vpsrlqYI(0, 0, 63);
      A.vmovapdMY(RSP, wslot(D - 1), 0);
      return true;

    // ---- pointer arithmetic ---------------------------------------------
    case Op::PtrAdd:
      // offset' = uint32 wrap of offset + low32(index * elemsize); bits
      // 32..55 cleared, the space tag kept — the scalar recipe, packed
      // (negating before or after the 32-bit truncation is the same).
      A.movRI64(RAX, (static_cast<uint64_t>(I.A) << 32) | I.A);
      A.movMR64(RSP, ScratchOff, RAX);
      A.vbroadcastsdYM(2, RSP, ScratchOff); // elemsize in every dword
      A.vmovapdYM(0, RSP, wslot(D - 2));    // pointers
      A.vmovapdYM(1, RSP, wslot(D - 1));    // indices
      A.vpi2YYY(0x40, 1, 1, 2);             // vpmulld: low-32 products
      if (I.B)
        A.vpiYYY(0xFA, 1, 14, 1); // negative subscript scale
      A.vpiYYY(0xFE, 1, 0, 1);    // vpaddd: low dwords = the new offsets
      A.vpsllqYI(2, 15, 56);      // the space-tag mask
      A.vpiYYY(0xDB, 0, 0, 2);
      zext32(1);
      A.vpiYYY(0xEB, 0, 0, 1);
      A.vmovapdMY(RSP, wslot(D - 2), 0);
      return true;

    // ---- control flow ---------------------------------------------------
    case Op::Jump:
      charge(I.A);
      jmpTo(I.A);
      return true;
    case Op::JfI:
    case Op::JtI:
      // Falsy mask: lanes whose full 64-bit slot is zero.
      A.vxorpdYYY(1, 1, 1);
      A.vmovapdYM(0, RSP, wslot(D - 1));
      A.vpcmpeqqYYY(0, 0, 1);
      A.vmovmskpd(RAX, 0);
      if (I.Code == Op::JtI)
        A.aluRI32(6, RAX, 15); // taken = truthy lanes
      emitBranch(I.A, PC + 1);
      return true;
    case Op::JfP:
    case Op::JtP:
      // Falsy mask: lanes whose space tag (bits 56..63) is zero (null).
      A.vmovapdYM(0, RSP, wslot(D - 1));
      A.vpsrlqYI(0, 0, 56);
      A.vxorpdYYY(1, 1, 1);
      A.vpcmpeqqYYY(0, 0, 1);
      A.vmovmskpd(RAX, 0);
      if (I.Code == Op::JtP)
        A.aluRI32(6, RAX, 15);
      emitBranch(I.A, PC + 1);
      return true;
    case Op::JfD:
    case Op::JtD:
      // Falsy mask: D == 0.0 ordered — NaN lanes compare false, i.e.
      // truthy, exactly the scalar ucomisd parity handling.
      A.vmovapdYM(0, RSP, wslot(D - 1));
      A.vxorpdYYY(1, 1, 1);
      A.vcmppdYYY(0, 0, 1, 0x00);
      A.vmovmskpd(RAX, 0);
      if (I.Code == Op::JtD)
        A.aluRI32(6, RAX, 15);
      emitBranch(I.A, PC + 1);
      return true;

    // ---- instrumentation ------------------------------------------------
    case Op::CondSite: {
      CmpOp Cmp = static_cast<CmpOp>(I.B);
      A.vmovapdYM(1, RSP, wslot(D - 2));
      A.vmovapdYM(2, RSP, wslot(D - 1));
      A.vcmppdYYY(0, 1, 2, vcmpPred(Cmp));
      A.vmovmskpd(RAX, 0);
      emitPenBlock(I.A, Cmp);
      A.vpsrlqYI(0, 0, 63); // canonical 0/1 outcome value
      A.vmovapdMY(RSP, wslot(D - 2), 0);
      return true;
    }
    case Op::CondSiteJf:
    case Op::CondSiteJt: {
      CmpOp Cmp = static_cast<CmpOp>(I.B & 7u);
      A.vmovapdYM(1, RSP, wslot(D - 2));
      A.vmovapdYM(2, RSP, wslot(D - 1));
      A.vcmppdYYY(0, 1, 2, vcmpPred(Cmp));
      A.vmovmskpd(RAX, 0);
      emitPenBlock(I.B >> 3, Cmp); // hook fires before the branch
      if (I.Code == Op::CondSiteJf)
        A.aluRI32(6, RAX, 15); // Jf takes the false lanes
      emitBranch(I.A, PC + 1);
      return true;
    }
    case Op::CmpDJf:
    case Op::CmpDJt:
      A.vmovapdYM(1, RSP, wslot(D - 2));
      A.vmovapdYM(2, RSP, wslot(D - 1));
      A.vcmppdYYY(0, 1, 2, vcmpPred(static_cast<CmpOp>(I.B)));
      A.vmovmskpd(RAX, 0);
      if (I.Code == Op::CmpDJf)
        A.aluRI32(6, RAX, 15);
      emitBranch(I.A, PC + 1);
      return true;

    // ---- builtin calls --------------------------------------------------
    case Op::CallB: {
      BuiltinId Id = static_cast<BuiltinId>(I.A);
      if (Id == BuiltinId::Fabs) {
        // A pure packed sign-bit clear, matching the scalar inline AND.
        A.vpsrlqYI(1, 15, 1); // the abs mask
        A.vmovapdYM(0, RSP, wslot(D - 1));
        A.vpdYYY(0x54, 0, 0, 1);
        A.vmovapdMY(RSP, wslot(D - 1), 0);
        return true;
      }
      // Per-lane bridge calls into the shared runBuiltin — pure, so no
      // lane masking (retired-lane garbage arguments are never read).
      A.vzeroupper();
      if (Id == BuiltinId::Scalbn) {
        for (unsigned L = 0; L < wide::kWideLanes; ++L) {
          A.movRM32(RDI, RSP, wlane(D - 1, L)); // int32 exponent
          A.movsdXM(0, RSP, wlane(D - 2, L));
          callBridge(reinterpret_cast<const void *>(&covermeJitScalbn));
          A.movsdMX(RSP, wlane(D - 2, L), 0);
        }
      } else if (I.B == 2) {
        for (unsigned L = 0; L < wide::kWideLanes; ++L) {
          A.movRI32(RDI, I.A);
          A.movsdXM(0, RSP, wlane(D - 2, L));
          A.movsdXM(1, RSP, wlane(D - 1, L));
          callBridge(reinterpret_cast<const void *>(&covermeJitBuiltin));
          A.movsdMX(RSP, wlane(D - 2, L), 0);
        }
      } else {
        for (unsigned L = 0; L < wide::kWideLanes; ++L) {
          A.movRI32(RDI, I.A);
          A.movsdXM(0, RSP, wlane(D - 1, L));
          A.xorpdXR(1, 1);
          callBridge(reinterpret_cast<const void *>(&covermeJitBuiltin));
          A.movsdMX(RSP, wlane(D - 1, L), 0);
        }
      }
      emitPinnedConsts(); // the bridge clobbered ymm14/ymm15
      return true;
    }

    // ---- returns and traps ----------------------------------------------
    case Op::Ret:
    case Op::RetV: {
      // Replay the VM's return-to-thunk edge charge (VM_JUMP(Thunk+1)).
      uint32_t HaltPC = F.Thunk + 1;
      if (HaltPC >= U.BlockCost.size())
        return false;
      charge(HaltPC);
      if (I.Code == Op::Ret) {
        A.vmovapdYM(0, RSP, wslot(D - 1));
        A.vmovupdMY(RBP, JwResult, 0); // ResultBits is only 8-aligned
      }
      ExitFix.push_back(A.jmp32());
      return true;
    }
    case Op::TrapOp:
      // The scalar re-runs reproduce the trap message row by row.
      jmpRetire();
      return true;

    // ---- superinstructions ----------------------------------------------
    case Op::LdF2AddD:
    case Op::LdF2SubD:
    case Op::LdF2MulD:
    case Op::LdF2DivD: {
      uint8_t Opc = I.Code == Op::LdF2AddD   ? 0x58
                    : I.Code == Op::LdF2SubD ? 0x5C
                    : I.Code == Op::LdF2MulD ? 0x59
                                             : 0x5E;
      A.vmovapdYM(0, RBX, fgran(I.A));
      A.vpdYYM(Opc, 0, 0, RBX, fgran(I.B));
      A.vmovapdMY(RSP, wslot(D), 0);
      return true;
    }
    case Op::LdFAddD:
    case Op::LdFSubD:
    case Op::LdFMulD:
    case Op::LdFDivD: {
      uint8_t Opc = I.Code == Op::LdFAddD   ? 0x58
                    : I.Code == Op::LdFSubD ? 0x5C
                    : I.Code == Op::LdFMulD ? 0x59
                                            : 0x5E;
      A.vmovapdYM(0, RSP, wslot(D - 1));
      A.vpdYYM(Opc, 0, 0, RBX, fgran(I.A));
      A.vmovapdMY(RSP, wslot(D - 1), 0);
      return true;
    }
    case Op::LdGAddD:
    case Op::LdGSubD:
    case Op::LdGMulD:
    case Op::LdGDivD: {
      uint8_t Opc = I.Code == Op::LdGAddD   ? 0x58
                    : I.Code == Op::LdGSubD ? 0x5C
                    : I.Code == Op::LdGMulD ? 0x59
                                            : 0x5E;
      A.vbroadcastsdYM(1, R13, static_cast<int32_t>(I.A));
      A.vmovapdYM(0, RSP, wslot(D - 1));
      A.vpdYYY(Opc, 0, 0, 1);
      A.vmovapdMY(RSP, wslot(D - 1), 0);
      return true;
    }
    case Op::ConstAddD:
    case Op::ConstSubD:
    case Op::ConstMulD:
    case Op::ConstDivD: {
      uint8_t Opc = I.Code == Op::ConstAddD   ? 0x58
                    : I.Code == Op::ConstSubD ? 0x5C
                    : I.Code == Op::ConstMulD ? 0x59
                                              : 0x5E;
      A.vbroadcastsdYM(1, R15, static_cast<int32_t>(I.A * 8));
      A.vmovapdYM(0, RSP, wslot(D - 1));
      A.vpdYYY(Opc, 0, 0, 1);
      A.vmovapdMY(RSP, wslot(D - 1), 0);
      return true;
    }
    case Op::LdFI2D:
    case Op::LdFU2D: {
      uint32_t In = (FrameDisp + I.A) & 7u;
      A.vmovapdYM(0, RBX, fgran(I.A));
      if (In)
        A.vpsrlqYI(0, 0, 32);
      if (I.Code == Op::LdFI2D)
        sext32(0, 1);
      else
        zext32(0);
      emitInt64ToDouble(0, 1);
      A.vmovapdMY(RSP, wslot(D), 0);
      return true;
    }

    default:
      return false;
    }
  }
};

} // namespace

bool wjit::wideEmitterAvailable() { return true; }

bool wjit::emitWideFragment(const CompiledUnit &U, unsigned FnIndex,
                            jit::Asm &A) {
  if (FnIndex >= U.Functions.size())
    return false;
  FnWideEmitter E(U, U.Functions[FnIndex], A);
  return E.run();
}

#else // !COVERME_JIT_WIDE_ENABLED

bool wjit::wideEmitterAvailable() { return false; }

bool wjit::emitWideFragment(const CompiledUnit &U, unsigned FnIndex,
                            jit::Asm &A) {
  (void)U;
  (void)FnIndex;
  (void)A;
  return false;
}

#endif // COVERME_JIT_WIDE_ENABLED

//===----------------------------------------------------------------------===//
// Vm::runBatchJitWide - the wide-JIT batch driver
//===----------------------------------------------------------------------===//
//
// Defined unconditionally (Vm.cpp references it whenever the SIMD lane is
// compiled in, whether or not the JIT is); without the wide emitter no
// binding ever carries a wide fragment, so the delegate below is dead.

#if COVERME_JIT_WIDE_ENABLED

void Vm::runBatchJitWide(ExecutionContext *Ctx, const double *Xs, size_t Count,
                         size_t N, double *Out) {
  assert(Bound.WideFrag && "runBatchJitWide without a wide fragment");
  const FunctionInfo &Fn = *Bound.Fn;
  if (!WideSt) {
    WideSt.reset(new wide::WideState());
    WideSt->Stack.resize(kOpStackSlots);
  }
  wide::WideState &W = *WideSt;

  // runBatch routed here only for the no-context or the fast FOO_R
  // context shape (pen on, trace on, no coverage/operand recording); the
  // generic replay shape stays on the scalar-JIT row loop.
  const bool Fast = Ctx != nullptr;
  if (Fast) {
    // Freeze the per-site saturation snapshot the pen fragments read —
    // loop-invariant across the batch because nothing mutates the table
    // during one (the interpreted wide lane relies on the same fact).
    const SaturationTable &T = Ctx->saturation();
    W.SatSnap.assign(Unit->NumSites, 0);
    for (uint32_t S = 0; S < Unit->NumSites; ++S)
      W.SatSnap[S] =
          static_cast<uint8_t>((T.isSaturated({S, true}) ? 1u : 0u) |
                               (T.isSaturated({S, false}) ? 2u : 0u));
    W.Epsilon = Ctx->Epsilon;
  }
  // Fragments append outcome records into a fixed-capacity log; a group
  // that would overflow it retires wholesale (rows re-run scalar). The
  // budget bounds sites per run far below this in practice.
  constexpr size_t kJitWideCondCap = 16384;
  if (W.CondLog.size() < kJitWideCondCap)
    W.CondLog.resize(kJitWideCondCap);

  // Frame arena: grow to the binding's high-water granule count once; the
  // per-group reset is a memset of the frame region, exactly jitProbe's
  // keep-the-arena / zero-the-frame dance per lane granule for granule
  // (CellBytes and FrameBytes are both 8-aligned).
  const size_t Granules = (static_cast<size_t>(Bound.EntryNeeded) + 7) >> 3;
  if (W.Frame.size() < Granules)
    W.Frame.resize(Granules);
  W.FrameBytes = Bound.EntryNeeded;

  unsigned BadStreak = 0; // same divergence backoff as the wide interpreter
  bool LastRowWide = false;
  uint64_t LastCondCount = 0;
  size_t I = 0;
  for (; I + wide::kWideLanes <= Count && BadStreak < 3;
       I += wide::kWideLanes) {
    const double *Group = Xs + I * N;
    uint8_t *FW = reinterpret_cast<uint8_t *>(W.Frame.data());
    std::memset(FW + wide::granuleByte(Bound.CellBytes), 0,
                static_cast<size_t>(Fn.FrameBytes) * wide::kWideLanes);
    // Entry lowering per lane, jitProbe's direct-to-frame form.
    uint32_t NextCell = 0;
    for (size_t P = 0; P < Fn.ParamTypes.size(); ++P) {
      const Type T = Fn.ParamTypes[P];
      const uint32_t M = Bound.CellBytes + Fn.ParamOffsets[P];
      if (T.isPointer()) {
        uint64_t Ptr = encodePtr(Space::Frame, NextCell);
        for (unsigned L = 0; L < wide::kWideLanes; ++L) {
          std::memcpy(FW + wide::laneByte(NextCell, L), &Group[L * N + P], 8);
          std::memcpy(FW + wide::laneByte(M, L), &Ptr, 8);
        }
        NextCell += 8;
        continue;
      }
      for (unsigned L = 0; L < wide::kWideLanes; ++L) {
        switch (T.Base) {
        case BaseType::Double:
          std::memcpy(FW + wide::laneByte(M, L), &Group[L * N + P], 8);
          break;
        case BaseType::Int: {
          int32_t V = detail::truncToInt32(Group[L * N + P]);
          std::memcpy(FW + wide::laneByte(M, L), &V, 4);
          break;
        }
        case BaseType::UInt: {
          uint32_t V = detail::truncToUInt32(Group[L * N + P]);
          std::memcpy(FW + wide::laneByte(M, L), &V, 4);
          break;
        }
        case BaseType::Void:
          break; // unreachable: bindEntry flagged void parameters
        }
      }
    }
    if (Fast) {
      for (unsigned L = 0; L < wide::kWideLanes; ++L)
        W.RWide.L[L].D = 1.0; // beginRun's r = 1.0
    }

    JitWideFrame JF;
    JF.FW = FW;
    JF.GMem = GlobalMem.data();
    JF.Pool = Unit->DoublePool.data();
    JF.StepsLeft = Bound.StepsAfterThunk; // thunk charge hoisted at bind
    JF.Active = wide::kAllLanes;
    JF.SavedRsp = 0;
    for (unsigned L = 0; L < wide::kWideLanes; ++L)
      JF.ResultBits[L] = 0;
    JF.SatFlags = Fast ? W.SatSnap.data() : nullptr;
    JF.Epsilon = W.Epsilon;
    JF.RWide = &W.RWide;
    JF.CondLog = W.CondLog.data();
    JF.CondCount = 0;
    JF.CondCap = W.CondLog.size();
    Bound.WideFrag(&JF);
    StepsLeft = JF.StepsLeft;
    Frames.clear();
    FrameTop = Bound.EntryNeeded;
    const wide::LaneMask Done =
        static_cast<wide::LaneMask>(JF.Active & wide::kAllLanes);
    LastCondCount = JF.CondCount;

    if (!Fast && Done) {
      // Convert completed lanes' raw Ret bits exactly like jitProbe's
      // tail (pointer returns never get a wide fragment).
      for (unsigned L = 0; L < wide::kWideLanes; ++L) {
        Slot R;
        R.U = JF.ResultBits[L];
        switch (Fn.ReturnType.Base) {
        case BaseType::Double:
          W.Result[L] = R.D;
          break;
        case BaseType::Int:
          W.Result[L] = static_cast<double>(R.I);
          break;
        case BaseType::UInt:
          W.Result[L] = static_cast<double>(static_cast<uint32_t>(R.U));
          break;
        case BaseType::Void:
          W.Result[L] = 0.0;
          break;
        }
      }
    }
    // Finalize rows in scalar row order; retired rows re-run from scratch
    // through probeRow -> boundProbe -> jitProbe (the scalar fragment,
    // then the interpreter for functions it rejected).
    for (unsigned L = 0; L < wide::kWideLanes; ++L) {
      if (Done & wide::laneBit(L)) {
        Out[I + L] = Fast ? W.RWide.L[L].D : W.Result[L];
      } else if (Fast) {
        Out[I + L] = probeRow<true>(Ctx, Group + L * N);
      } else {
        Out[I + L] = probeRow<false>(static_cast<ExecutionContext *>(nullptr),
                                     Group + L * N);
      }
    }
    const unsigned Completed =
        static_cast<unsigned>(__builtin_popcount(static_cast<unsigned>(Done)));
    BadStreak = Completed < 2 ? BadStreak + 1 : 0;
    LastRowWide = (Done >> (wide::kWideLanes - 1)) & 1u;
  }
  // Ragged tail — and, after a backoff, everything that remains.
  for (; I < Count; ++I) {
    if (Fast)
      Out[I] = probeRow<true>(Ctx, Xs + I * N);
    else
      Out[I] = probeRow<false>(static_cast<ExecutionContext *>(nullptr),
                               Xs + I * N);
    LastRowWide = false;
  }

  // Observable end state when the last row completed wide: a clean probe's
  // trap flags, and (fast mode) the last row's r and trace materialized
  // from the recorded outcome log — identical to runBatchWideImpl.
  if (LastRowWide) {
    Trapped = false;
    if (!Message.empty())
      Message.clear();
    if (Fast) {
      constexpr unsigned Last = wide::kWideLanes - 1;
      Ctx->beginRun();
      Ctx->Trace.reserve(LastCondCount);
      for (uint64_t C = 0; C < LastCondCount; ++C)
        Ctx->Trace.push_back(
            {W.CondLog[C].Site, ((W.CondLog[C].Outcomes >> Last) & 1u) != 0});
      Ctx->R = W.RWide.L[Last].D;
    }
  }
}

#else // !COVERME_JIT_WIDE_ENABLED

void Vm::runBatchJitWide(ExecutionContext *Ctx, const double *Xs, size_t Count,
                         size_t N, double *Out) {
  // Unreachable: no wide fragment is ever built in this configuration.
  if (Ctx)
    runRows<true>(Ctx, Xs, Count, N, Out);
  else
    runRows<false>(static_cast<ExecutionContext *>(nullptr), Xs, Count, N, Out);
}

#endif // COVERME_JIT_WIDE_ENABLED
