//===- Interp.h - Tree-walking interpreter for the mini-C subset ----------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes analyzed translation units. Together with the parser and Sema
/// this replaces the paper's Clang -> LLVM-pass -> libr.so pipeline
/// (Sect. 5.1): an interpreted function *is* the instrumented FOO_I — every
/// conditional site Sema numbered calls the same rt::cond hook the LLVM
/// pass would have injected, so wrapping the interpreter in a Program
/// yields the representing function FOO_R with no compilation step.
///
/// The memory model is a byte arena per storage class, which makes
/// Fdlibm's pointer-cast bit twiddling — `*(1 + (int *)&x)` reads the high
/// word of a double on a little-endian host — behave exactly as compiled C.
///
/// Execution is total: every trap (out-of-bounds access, step-budget
/// exhaustion, unexpected NaN conversions) abandons the current entry call
/// and surfaces as a NaN result, which the optimization layer already
/// treats as a worst-case objective value.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_LANG_INTERP_H
#define COVERME_LANG_INTERP_H

#include "lang/Ast.h"

#include <string>
#include <vector>

namespace coverme {
namespace lang {

class Evaluator;

/// How the bytecode VM's dispatch loop is driven. Purely an execution-
/// speed knob: both loops run the same handlers over the same stream, and
/// the differential suite holds them bit-identical.
enum class VmDispatch : uint8_t {
  /// Computed-goto when the build compiled it in, else the switch loop.
  Auto,
  /// The portable switch-dispatch loop.
  Switch,
  /// GNU computed-goto direct threading (falls back to Switch in builds
  /// configured with COVERME_VM_CGOTO=OFF or on non-GNU toolchains).
  ComputedGoto,
};

/// Whether the bytecode VM's batch entry may take the SIMD wide-execution
/// lane. Like VmDispatch, a pure speed knob: the wide lane retires any row
/// it cannot finish back to the scalar loop, and the differential suite
/// holds both bit-identical per row.
enum class VmSimd : uint8_t {
  /// Wide lane when the build compiled it in (COVERME_VM_SIMD) and the
  /// host CPU supports AVX2, else the scalar row loop.
  Auto,
  /// Force the scalar row-at-a-time batch loop.
  Off,
};

/// Interpreter resource limits. The step budget bounds hostile inputs
/// that drive loops astronomically long (the interpreter equivalent of a
/// test harness timeout). Both execution tiers share the budget
/// semantics; Dispatch and Simd are read by the bytecode VM only.
struct InterpOptions {
  uint64_t MaxSteps = 4000000; ///< Expression/statement evaluations per call.
  unsigned MaxCallDepth = 64;  ///< Nested interpreted calls.
  unsigned MaxStackBytes = 1u << 20; ///< Frame arena cap.
  VmDispatch Dispatch = VmDispatch::Auto; ///< VM dispatch loop selection.
  VmSimd Simd = VmSimd::Auto; ///< VM batch-entry wide-lane selection.
};

/// Tree-walking evaluator over one analyzed TranslationUnit.
///
/// Thread-compatible, not thread-safe: one Interpreter per thread. The
/// referenced TranslationUnit must outlive the interpreter.
class Interpreter {
public:
  /// \p TU must have passed Sema::analyze.
  explicit Interpreter(const TranslationUnit &TU, InterpOptions Opts = {});

  /// Calls \p F with entry-parameter lowering (Sect. 5.3): a `double`
  /// parameter binds its argument directly; a `double *` parameter binds a
  /// fresh cell seeded with the argument; `int` / `unsigned` parameters
  /// truncate the argument. \p Args must hold F.Params.size() doubles.
  /// Returns the function result converted to double, or NaN on a trap.
  double callEntry(const FunctionDecl &F, const double *Args);

  /// True when the last callEntry trapped; trapMessage() says why.
  bool trapped() const { return !TrapMessage.empty(); }
  const std::string &trapMessage() const { return TrapMessage; }

  const TranslationUnit &unit() const { return TU; }
  const InterpOptions &options() const { return Opts; }

private:
  friend class Evaluator;

  const TranslationUnit &TU;
  InterpOptions Opts;
  std::vector<uint8_t> GlobalMem;
  std::string TrapMessage;

  void initializeGlobals();
};

} // namespace lang
} // namespace coverme

#endif // COVERME_LANG_INTERP_H
