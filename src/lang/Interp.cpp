//===- Interp.cpp - Tree-walking interpreter for the mini-C subset --------===//

#include "lang/Interp.h"

#include "lang/FpSemantics.h"
#include "runtime/ExecutionContext.h"

#include <cmath>
#include <cstring>
#include <limits>

using namespace coverme;
using namespace coverme::lang;

namespace {

/// Which arena a pointer addresses.
enum class AddrSpace : uint8_t {
  Null,   ///< The null pointer.
  Global, ///< File-scope storage.
  Stack,  ///< Frame storage.
};

/// A typed byte address into one of the arenas.
struct Ptr {
  AddrSpace Space = AddrSpace::Null;
  uint32_t Offset = 0;

  bool isNull() const { return Space == AddrSpace::Null; }
};

/// A runtime value: a scalar of the subset's three types or a pointer.
/// Int and UInt occupy the I field with their canonical 32-bit value.
struct Value {
  Type Ty;
  double D = 0.0;
  int64_t I = 0;
  Ptr P;

  static Value makeInt(int32_t V) {
    Value R;
    R.Ty = Type(BaseType::Int);
    R.I = V;
    return R;
  }
  static Value makeUInt(uint32_t V) {
    Value R;
    R.Ty = Type(BaseType::UInt);
    R.I = V;
    return R;
  }
  static Value makeDouble(double V) {
    Value R;
    R.Ty = Type(BaseType::Double);
    R.D = V;
    return R;
  }
  static Value makePtr(Type Ty, Ptr P) {
    Value R;
    R.Ty = Ty;
    R.P = P;
    return R;
  }
  static Value makeVoid() { return Value(); }
};

/// Truncates a double to int32 with saturation (C leaves out-of-range
/// conversions undefined; the interpreter must stay total on hostile
/// minimizer probes).
int32_t truncToInt32(double V) {
  if (V != V)
    return 0;
  if (V >= 2147483647.0)
    return 2147483647;
  if (V <= -2147483648.0)
    return std::numeric_limits<int32_t>::min();
  return static_cast<int32_t>(V);
}

uint32_t truncToUInt32(double V) {
  if (V != V)
    return 0;
  if (V >= 4294967295.0)
    return 4294967295u;
  if (V <= 0.0)
    return 0u;
  return static_cast<uint32_t>(V);
}

/// Packs a pointer into the 8 bytes it occupies in memory.
uint64_t encodePtr(Ptr P) {
  return (static_cast<uint64_t>(P.Space) << 56) | P.Offset;
}

Ptr decodePtr(uint64_t Bits) {
  Ptr P;
  P.Space = static_cast<AddrSpace>(Bits >> 56);
  P.Offset = static_cast<uint32_t>(Bits);
  return P;
}

/// One frame of interpreted execution (call state shared via Evaluator).
struct Frame {
  uint32_t Base = 0;
  const FunctionDecl *Fn = nullptr;
};

/// How a statement finished.
enum class Flow : uint8_t { Normal, Break, Continue, Return };

} // namespace

/// The per-entry-call evaluation engine. Declared as a friend of
/// Interpreter so it can reach the arenas; its lifetime is one callEntry.
class lang::Evaluator {
public:
  Evaluator(Interpreter &Interp)
      : Interp(Interp), TU(Interp.TU), Opts(Interp.Opts),
        GlobalMem(Interp.GlobalMem) {}

  /// Calls \p F with already-converted argument values.
  Value call(const FunctionDecl &F, std::vector<Value> Args);

  bool trapped() const { return Trapped; }
  const std::string &trapMessage() const { return Message; }

  /// Raises a trap. Execution unwinds via the Trapped flag checks.
  Value trap(const std::string &Why) {
    if (!Trapped) {
      Trapped = true;
      Message = Why;
    }
    return Value::makeVoid();
  }

private:
  Interpreter &Interp;
  const TranslationUnit &TU;
  const InterpOptions &Opts;
  std::vector<uint8_t> &GlobalMem;
  std::vector<uint8_t> Stack;
  std::vector<Frame> Frames;
  uint32_t StackTop = 0;
  uint64_t StepsLeft = 0;
  bool Trapped = false;
  std::string Message;

  friend class lang::Interpreter;

  bool step() {
    if (StepsLeft == 0) {
      trap("step budget exhausted");
      return false;
    }
    --StepsLeft;
    return true;
  }

  // ----- memory ------------------------------------------------------------

  uint8_t *resolve(Ptr P, unsigned Size) {
    std::vector<uint8_t> *Arena = nullptr;
    switch (P.Space) {
    case AddrSpace::Null:
      trap("null pointer dereference");
      return nullptr;
    case AddrSpace::Global:
      Arena = &GlobalMem;
      break;
    case AddrSpace::Stack:
      Arena = &Stack;
      break;
    }
    if (static_cast<uint64_t>(P.Offset) + Size > Arena->size()) {
      trap("out-of-bounds memory access");
      return nullptr;
    }
    return Arena->data() + P.Offset;
  }

  Value load(Ptr P, Type Ty) {
    uint8_t *Mem = resolve(P, Ty.sizeInBytes());
    if (!Mem)
      return Value::makeVoid();
    if (Ty.isPointer()) {
      uint64_t Bits;
      std::memcpy(&Bits, Mem, 8);
      return Value::makePtr(Ty, decodePtr(Bits));
    }
    switch (Ty.Base) {
    case BaseType::Int: {
      int32_t V;
      std::memcpy(&V, Mem, 4);
      return Value::makeInt(V);
    }
    case BaseType::UInt: {
      uint32_t V;
      std::memcpy(&V, Mem, 4);
      return Value::makeUInt(V);
    }
    case BaseType::Double: {
      double V;
      std::memcpy(&V, Mem, 8);
      return Value::makeDouble(V);
    }
    case BaseType::Void:
      break;
    }
    return trap("load of unsupported type");
  }

  void store(Ptr P, const Value &V) {
    uint8_t *Mem = resolve(P, V.Ty.sizeInBytes());
    if (!Mem)
      return;
    if (V.Ty.isPointer()) {
      uint64_t Bits = encodePtr(V.P);
      std::memcpy(Mem, &Bits, 8);
      return;
    }
    switch (V.Ty.Base) {
    case BaseType::Int: {
      int32_t Bits = static_cast<int32_t>(V.I);
      std::memcpy(Mem, &Bits, 4);
      return;
    }
    case BaseType::UInt: {
      uint32_t Bits = static_cast<uint32_t>(V.I);
      std::memcpy(Mem, &Bits, 4);
      return;
    }
    case BaseType::Double:
      std::memcpy(Mem, &V.D, 8);
      return;
    case BaseType::Void:
      break;
    }
    trap("store of unsupported type");
  }

  /// Address of a declared variable in the current frame / global arena.
  Ptr addressOf(const VarDecl &D) {
    Ptr P;
    if (D.Storage == StorageKind::Global) {
      P.Space = AddrSpace::Global;
      P.Offset = D.ByteOffset;
    } else {
      P.Space = AddrSpace::Stack;
      P.Offset = Frames.back().Base + D.ByteOffset;
    }
    return P;
  }

  // ----- conversions ---------------------------------------------------------

  double asDouble(const Value &V) {
    if (V.Ty.isDouble())
      return V.D;
    if (V.Ty.Base == BaseType::UInt && !V.Ty.isPointer())
      return static_cast<double>(static_cast<uint32_t>(V.I));
    if (V.Ty.isInteger())
      return static_cast<double>(V.I);
    trap("pointer used as a number");
    return 0.0;
  }

  int32_t asInt32(const Value &V) {
    if (V.Ty.isDouble())
      return truncToInt32(V.D);
    if (V.Ty.isInteger())
      return static_cast<int32_t>(V.I);
    trap("pointer used as an integer");
    return 0;
  }

  uint32_t asUInt32(const Value &V) {
    if (V.Ty.isDouble())
      return truncToUInt32(V.D);
    if (V.Ty.isInteger())
      return static_cast<uint32_t>(V.I);
    trap("pointer used as an integer");
    return 0;
  }

  /// Converts \p V to \p Target for stores, casts, argument passing.
  Value convert(const Value &V, Type Target) {
    if (Target.isPointer()) {
      if (V.Ty.isPointer() || V.Ty.isVoid())
        return Value::makePtr(Target, V.P);
      if (V.Ty.isInteger() && V.I == 0)
        return Value::makePtr(Target, Ptr()); // literal null
      // Integer-to-pointer casts beyond null do not occur in the subset.
      trap("invalid conversion to pointer type");
      return Value::makeVoid();
    }
    switch (Target.Base) {
    case BaseType::Double:
      return Value::makeDouble(asDouble(V));
    case BaseType::Int:
      return Value::makeInt(asInt32(V));
    case BaseType::UInt:
      return Value::makeUInt(asUInt32(V));
    case BaseType::Void:
      return Value::makeVoid();
    }
    assert(false && "unknown BaseType");
    return Value::makeVoid();
  }

  bool truthy(const Value &V) {
    if (V.Ty.isPointer())
      return !V.P.isNull();
    if (V.Ty.isDouble())
      return V.D != 0.0;
    return V.I != 0;
  }

  // ----- evaluation -----------------------------------------------------------

  Value evalExpr(const Expr &E);
  bool evalLvalue(const Expr &E, Ptr &Addr, Type &Ty);
  Value evalBinary(const BinaryExpr &B);
  Value applyBinary(BinaryOp Op, const Value &L, const Value &R,
                    unsigned Line);
  Value evalCall(const CallExpr &Call);
  Value callBuiltin(const std::string &Name, const std::vector<Value> &Args);
  bool evalCondition(const Expr &Cond, uint32_t Site, bool &Outcome);
  Flow execStmt(const Stmt &S, Value &ReturnValue);
  void initLocal(const VarDecl &D);
};

using lang::Evaluator;

bool Evaluator::evalLvalue(const Expr &E, Ptr &Addr, Type &Ty) {
  if (!step())
    return false;
  switch (E.Kind) {
  case ExprKind::VarRef: {
    const auto &Ref = exprCast<VarRefExpr>(E);
    assert(Ref.Decl && "unresolved variable reference");
    Addr = addressOf(*Ref.Decl);
    Ty = Ref.Decl->DeclType;
    return true;
  }
  case ExprKind::Unary: {
    const auto &U = exprCast<UnaryExpr>(E);
    assert(U.Op == UnaryOp::Deref && "not an lvalue unary");
    Value P = evalExpr(*U.Operand);
    if (Trapped)
      return false;
    Addr = P.P;
    Ty = P.Ty.isPointer() ? P.Ty.pointee() : E.Ty;
    return true;
  }
  case ExprKind::Index: {
    const auto &Idx = exprCast<IndexExpr>(E);
    Value Base = evalExpr(*Idx.Base);
    Value Offset = evalExpr(*Idx.Index);
    if (Trapped)
      return false;
    Ty = Base.Ty.pointee();
    Addr = Base.P;
    int64_t Delta =
        static_cast<int64_t>(asInt32(Offset)) * Ty.sizeInBytes();
    Addr.Offset = static_cast<uint32_t>(Addr.Offset + Delta);
    return true;
  }
  default:
    trap("expression is not an lvalue");
    return false;
  }
}

Value Evaluator::applyBinary(BinaryOp Op, const Value &L, const Value &R,
                             unsigned Line) {
  (void)Line;
  switch (Op) {
  case BinaryOp::Add:
  case BinaryOp::Sub: {
    // Pointer arithmetic first.
    if (L.Ty.isPointer() || R.Ty.isPointer()) {
      const Value &PtrSide = L.Ty.isPointer() ? L : R;
      const Value &IntSide = L.Ty.isPointer() ? R : L;
      int64_t Delta = static_cast<int64_t>(asInt32(IntSide)) *
                      PtrSide.Ty.pointee().sizeInBytes();
      if (Op == BinaryOp::Sub)
        Delta = -Delta;
      Ptr P = PtrSide.P;
      P.Offset = static_cast<uint32_t>(P.Offset + Delta);
      return Value::makePtr(PtrSide.Ty, P);
    }
    [[fallthrough]];
  }
  case BinaryOp::Mul:
  case BinaryOp::Div: {
    if (L.Ty.isDouble() || R.Ty.isDouble()) {
      // Through fp:: so NaN-operand selection is pinned across tiers.
      double A = asDouble(L), B = asDouble(R);
      switch (Op) {
      case BinaryOp::Add:
        return Value::makeDouble(fp::addD(A, B));
      case BinaryOp::Sub:
        return Value::makeDouble(fp::subD(A, B));
      case BinaryOp::Mul:
        return Value::makeDouble(fp::mulD(A, B));
      default:
        return Value::makeDouble(fp::divD(A, B)); // IEEE: /0 yields inf/NaN
      }
    }
    if (L.Ty.Base == BaseType::UInt || R.Ty.Base == BaseType::UInt) {
      uint32_t A = asUInt32(L), B = asUInt32(R);
      switch (Op) {
      case BinaryOp::Add:
        return Value::makeUInt(A + B);
      case BinaryOp::Sub:
        return Value::makeUInt(A - B);
      case BinaryOp::Mul:
        return Value::makeUInt(A * B);
      default:
        if (B == 0)
          return trap("integer division by zero");
        return Value::makeUInt(A / B);
      }
    }
    int32_t A = asInt32(L), B = asInt32(R);
    switch (Op) {
    case BinaryOp::Add:
      return Value::makeInt(static_cast<int32_t>(
          static_cast<uint32_t>(A) + static_cast<uint32_t>(B)));
    case BinaryOp::Sub:
      return Value::makeInt(static_cast<int32_t>(
          static_cast<uint32_t>(A) - static_cast<uint32_t>(B)));
    case BinaryOp::Mul:
      return Value::makeInt(static_cast<int32_t>(
          static_cast<uint32_t>(A) * static_cast<uint32_t>(B)));
    default:
      if (B == 0)
        return trap("integer division by zero");
      if (A == std::numeric_limits<int32_t>::min() && B == -1)
        return Value::makeInt(A); // wrap rather than UB
      return Value::makeInt(A / B);
    }
  }

  case BinaryOp::Rem: {
    if (L.Ty.Base == BaseType::UInt || R.Ty.Base == BaseType::UInt) {
      uint32_t B = asUInt32(R);
      if (B == 0)
        return trap("integer remainder by zero");
      return Value::makeUInt(asUInt32(L) % B);
    }
    int32_t B = asInt32(R);
    if (B == 0)
      return trap("integer remainder by zero");
    int32_t A = asInt32(L);
    if (A == std::numeric_limits<int32_t>::min() && B == -1)
      return Value::makeInt(0);
    return Value::makeInt(A % B);
  }

  case BinaryOp::Shl:
  case BinaryOp::Shr: {
    uint32_t Amount = asUInt32(R) & 31u; // defined for any shift count
    if (L.Ty.Base == BaseType::UInt) {
      uint32_t A = asUInt32(L);
      return Value::makeUInt(Op == BinaryOp::Shl ? A << Amount
                                                 : A >> Amount);
    }
    int32_t A = asInt32(L);
    if (Op == BinaryOp::Shl)
      return Value::makeInt(
          static_cast<int32_t>(static_cast<uint32_t>(A) << Amount));
    return Value::makeInt(A >> Amount); // arithmetic shift, as Fdlibm assumes
  }

  case BinaryOp::BitAnd:
  case BinaryOp::BitOr:
  case BinaryOp::BitXor: {
    bool Unsigned =
        L.Ty.Base == BaseType::UInt || R.Ty.Base == BaseType::UInt;
    uint32_t A = asUInt32(L);
    uint32_t B = asUInt32(R);
    uint32_t V = Op == BinaryOp::BitAnd  ? (A & B)
                 : Op == BinaryOp::BitOr ? (A | B)
                                         : (A ^ B);
    return Unsigned ? Value::makeUInt(V)
                    : Value::makeInt(static_cast<int32_t>(V));
  }

  case BinaryOp::LT:
  case BinaryOp::LE:
  case BinaryOp::GT:
  case BinaryOp::GE:
  case BinaryOp::EQ:
  case BinaryOp::NE: {
    bool Result;
    if (L.Ty.isPointer() != R.Ty.isPointer()) {
      // Null-pointer-constant comparison (==/!= only, per Sema).
      const Value &PtrSide = L.Ty.isPointer() ? L : R;
      bool IsNull = PtrSide.P.isNull();
      return Value::makeInt((Op == BinaryOp::EQ) == IsNull ? 1 : 0);
    }
    if (L.Ty.isPointer() && R.Ty.isPointer()) {
      uint64_t A = encodePtr(L.P), B = encodePtr(R.P);
      Result = Op == BinaryOp::LT   ? A < B
               : Op == BinaryOp::LE ? A <= B
               : Op == BinaryOp::GT ? A > B
               : Op == BinaryOp::GE ? A >= B
               : Op == BinaryOp::EQ ? A == B
                                    : A != B;
    } else if (L.Ty.isDouble() || R.Ty.isDouble()) {
      double A = asDouble(L), B = asDouble(R);
      Result = Op == BinaryOp::LT   ? A < B
               : Op == BinaryOp::LE ? A <= B
               : Op == BinaryOp::GT ? A > B
               : Op == BinaryOp::GE ? A >= B
               : Op == BinaryOp::EQ ? A == B
                                    : A != B;
    } else if (L.Ty.Base == BaseType::UInt || R.Ty.Base == BaseType::UInt) {
      uint32_t A = asUInt32(L), B = asUInt32(R);
      Result = Op == BinaryOp::LT   ? A < B
               : Op == BinaryOp::LE ? A <= B
               : Op == BinaryOp::GT ? A > B
               : Op == BinaryOp::GE ? A >= B
               : Op == BinaryOp::EQ ? A == B
                                    : A != B;
    } else {
      int32_t A = asInt32(L), B = asInt32(R);
      Result = Op == BinaryOp::LT   ? A < B
               : Op == BinaryOp::LE ? A <= B
               : Op == BinaryOp::GT ? A > B
               : Op == BinaryOp::GE ? A >= B
               : Op == BinaryOp::EQ ? A == B
                                    : A != B;
    }
    return Value::makeInt(Result ? 1 : 0);
  }

  case BinaryOp::LogAnd:
  case BinaryOp::LogOr:
  case BinaryOp::Comma:
    assert(false && "handled by evalBinary (sequencing operators)");
    return Value::makeVoid();
  }
  assert(false && "unknown BinaryOp");
  return Value::makeVoid();
}

Value Evaluator::evalBinary(const BinaryExpr &B) {
  // Sequencing operators control operand evaluation themselves.
  if (B.Op == BinaryOp::LogAnd || B.Op == BinaryOp::LogOr) {
    Value L = evalExpr(*B.Lhs);
    if (Trapped)
      return Value::makeVoid();
    bool LTrue = truthy(L);
    if (B.Op == BinaryOp::LogAnd && !LTrue)
      return Value::makeInt(0);
    if (B.Op == BinaryOp::LogOr && LTrue)
      return Value::makeInt(1);
    Value R = evalExpr(*B.Rhs);
    if (Trapped)
      return Value::makeVoid();
    return Value::makeInt(truthy(R) ? 1 : 0);
  }
  if (B.Op == BinaryOp::Comma) {
    evalExpr(*B.Lhs);
    if (Trapped)
      return Value::makeVoid();
    return evalExpr(*B.Rhs);
  }
  Value L = evalExpr(*B.Lhs);
  Value R = evalExpr(*B.Rhs);
  if (Trapped)
    return Value::makeVoid();
  return applyBinary(B.Op, L, R, B.Line);
}

Value Evaluator::callBuiltin(const std::string &Name,
                             const std::vector<Value> &Args) {
  auto A = [&](size_t I) { return asDouble(Args[I]); };
  if (Name == "fabs")
    return Value::makeDouble(std::fabs(A(0)));
  if (Name == "sqrt")
    return Value::makeDouble(std::sqrt(A(0)));
  if (Name == "sin")
    return Value::makeDouble(std::sin(A(0)));
  if (Name == "cos")
    return Value::makeDouble(std::cos(A(0)));
  if (Name == "tan")
    return Value::makeDouble(std::tan(A(0)));
  if (Name == "asin")
    return Value::makeDouble(std::asin(A(0)));
  if (Name == "acos")
    return Value::makeDouble(std::acos(A(0)));
  if (Name == "atan")
    return Value::makeDouble(std::atan(A(0)));
  if (Name == "exp")
    return Value::makeDouble(std::exp(A(0)));
  if (Name == "log")
    return Value::makeDouble(std::log(A(0)));
  if (Name == "log10")
    return Value::makeDouble(std::log10(A(0)));
  if (Name == "log1p")
    return Value::makeDouble(std::log1p(A(0)));
  if (Name == "expm1")
    return Value::makeDouble(std::expm1(A(0)));
  if (Name == "floor")
    return Value::makeDouble(std::floor(A(0)));
  if (Name == "ceil")
    return Value::makeDouble(std::ceil(A(0)));
  if (Name == "rint")
    return Value::makeDouble(std::rint(A(0)));
  if (Name == "trunc")
    return Value::makeDouble(std::trunc(A(0)));
  if (Name == "cbrt")
    return Value::makeDouble(std::cbrt(A(0)));
  if (Name == "sinh")
    return Value::makeDouble(std::sinh(A(0)));
  if (Name == "cosh")
    return Value::makeDouble(std::cosh(A(0)));
  if (Name == "tanh")
    return Value::makeDouble(std::tanh(A(0)));
  if (Name == "j0")
    return Value::makeDouble(::j0(A(0)));
  if (Name == "j1")
    return Value::makeDouble(::j1(A(0)));
  if (Name == "y0")
    return Value::makeDouble(::y0(A(0)));
  if (Name == "y1")
    return Value::makeDouble(::y1(A(0)));
  if (Name == "pow")
    return Value::makeDouble(std::pow(A(0), A(1)));
  if (Name == "fmod")
    return Value::makeDouble(std::fmod(A(0), A(1)));
  if (Name == "atan2")
    return Value::makeDouble(std::atan2(A(0), A(1)));
  if (Name == "hypot")
    return Value::makeDouble(std::hypot(A(0), A(1)));
  if (Name == "copysign")
    return Value::makeDouble(std::copysign(A(0), A(1)));
  if (Name == "fmin")
    return Value::makeDouble(std::fmin(A(0), A(1)));
  if (Name == "fmax")
    return Value::makeDouble(std::fmax(A(0), A(1)));
  if (Name == "scalbn" || Name == "ldexp")
    return Value::makeDouble(std::scalbn(A(0), asInt32(Args[1])));
  return trap("unknown builtin '" + Name + "'");
}

Value Evaluator::evalCall(const CallExpr &Call) {
  std::vector<Value> Args;
  Args.reserve(Call.Args.size());
  for (const auto &Arg : Call.Args) {
    Args.push_back(evalExpr(*Arg));
    if (Trapped)
      return Value::makeVoid();
  }
  if (!Call.Callee)
    return callBuiltin(Call.Name, Args);
  // Convert arguments to the parameter types.
  for (size_t I = 0; I < Args.size(); ++I) {
    Args[I] = convert(Args[I], Call.Callee->Params[I]->DeclType);
    if (Trapped)
      return Value::makeVoid();
  }
  return call(*Call.Callee, std::move(Args));
}

Value Evaluator::evalExpr(const Expr &E) {
  if (!step())
    return Value::makeVoid();
  switch (E.Kind) {
  case ExprKind::IntLiteral: {
    const auto &Lit = exprCast<IntLiteralExpr>(E);
    return Lit.IsUnsigned
               ? Value::makeUInt(static_cast<uint32_t>(Lit.Value))
               : Value::makeInt(static_cast<int32_t>(Lit.Value));
  }
  case ExprKind::DoubleLiteral:
    return Value::makeDouble(exprCast<DoubleLiteralExpr>(E).Value);

  case ExprKind::VarRef: {
    const auto &Ref = exprCast<VarRefExpr>(E);
    assert(Ref.Decl && "unresolved variable reference");
    Ptr Addr = addressOf(*Ref.Decl);
    if (Ref.Decl->isArray()) // arrays decay to &elem[0]
      return Value::makePtr(Ref.Decl->DeclType.pointerTo(), Addr);
    return load(Addr, Ref.Decl->DeclType);
  }

  case ExprKind::Unary: {
    const auto &U = exprCast<UnaryExpr>(E);
    switch (U.Op) {
    case UnaryOp::Neg: {
      Value V = evalExpr(*U.Operand);
      if (Trapped)
        return Value::makeVoid();
      if (V.Ty.isDouble())
        return Value::makeDouble(-V.D);
      if (V.Ty.Base == BaseType::UInt)
        return Value::makeUInt(0u - asUInt32(V));
      return Value::makeInt(static_cast<int32_t>(
          0u - static_cast<uint32_t>(asInt32(V))));
    }
    case UnaryOp::LogNot: {
      Value V = evalExpr(*U.Operand);
      if (Trapped)
        return Value::makeVoid();
      return Value::makeInt(truthy(V) ? 0 : 1);
    }
    case UnaryOp::BitNot: {
      Value V = evalExpr(*U.Operand);
      if (Trapped)
        return Value::makeVoid();
      if (V.Ty.Base == BaseType::UInt)
        return Value::makeUInt(~asUInt32(V));
      return Value::makeInt(~asInt32(V));
    }
    case UnaryOp::Deref: {
      Value P = evalExpr(*U.Operand);
      if (Trapped)
        return Value::makeVoid();
      if (!P.Ty.isPointer())
        return trap("dereference of a non-pointer value");
      return load(P.P, P.Ty.pointee());
    }
    case UnaryOp::AddrOf: {
      Ptr Addr;
      Type Ty;
      if (!evalLvalue(*U.Operand, Addr, Ty))
        return Value::makeVoid();
      return Value::makePtr(Ty.pointerTo(), Addr);
    }
    case UnaryOp::PreInc:
    case UnaryOp::PreDec: {
      Ptr Addr;
      Type Ty;
      if (!evalLvalue(*U.Operand, Addr, Ty))
        return Value::makeVoid();
      Value V = load(Addr, Ty);
      if (Trapped)
        return Value::makeVoid();
      Value One = Ty.isDouble() ? Value::makeDouble(1.0) : Value::makeInt(1);
      Value Next = applyBinary(
          U.Op == UnaryOp::PreInc ? BinaryOp::Add : BinaryOp::Sub, V, One,
          E.Line);
      Next = convert(Next, Ty);
      store(Addr, Next);
      return Next;
    }
    }
    assert(false && "unknown UnaryOp");
    return Value::makeVoid();
  }

  case ExprKind::Postfix: {
    const auto &P = exprCast<PostfixExpr>(E);
    Ptr Addr;
    Type Ty;
    if (!evalLvalue(*P.Operand, Addr, Ty))
      return Value::makeVoid();
    Value V = load(Addr, Ty);
    if (Trapped)
      return Value::makeVoid();
    Value One = Ty.isDouble() ? Value::makeDouble(1.0) : Value::makeInt(1);
    Value Next = applyBinary(
        P.IsIncrement ? BinaryOp::Add : BinaryOp::Sub, V, One, E.Line);
    Next = convert(Next, Ty);
    store(Addr, Next);
    return V; // postfix yields the old value
  }

  case ExprKind::Cast: {
    const auto &C = exprCast<CastExpr>(E);
    // `(int *)&x` style casts must preserve the address while retyping the
    // pointee — the core of Fdlibm's word access.
    Value V = evalExpr(*C.Operand);
    if (Trapped)
      return Value::makeVoid();
    if (C.Target.isPointer() && V.Ty.isPointer())
      return Value::makePtr(C.Target, V.P);
    return convert(V, C.Target);
  }

  case ExprKind::Binary:
    return evalBinary(exprCast<BinaryExpr>(E));

  case ExprKind::Ternary: {
    const auto &T = exprCast<TernaryExpr>(E);
    Value C = evalExpr(*T.Cond);
    if (Trapped)
      return Value::makeVoid();
    Value V = truthy(C) ? evalExpr(*T.TrueExpr) : evalExpr(*T.FalseExpr);
    if (Trapped)
      return Value::makeVoid();
    return E.Ty.isArithmetic() ? convert(V, E.Ty) : V;
  }

  case ExprKind::Assign: {
    const auto &A = exprCast<AssignExpr>(E);
    Ptr Addr;
    Type Ty;
    if (!evalLvalue(*A.Lhs, Addr, Ty))
      return Value::makeVoid();
    Value R = evalExpr(*A.Rhs);
    if (Trapped)
      return Value::makeVoid();
    Value Result;
    if (A.Op == AssignOp::Assign) {
      Result = convert(R, Ty);
    } else {
      Value Old = load(Addr, Ty);
      if (Trapped)
        return Value::makeVoid();
      BinaryOp Op = BinaryOp::Add; // always overwritten; placates -Wmaybe-uninitialized
      switch (A.Op) {
      case AssignOp::Add:
        Op = BinaryOp::Add;
        break;
      case AssignOp::Sub:
        Op = BinaryOp::Sub;
        break;
      case AssignOp::Mul:
        Op = BinaryOp::Mul;
        break;
      case AssignOp::Div:
        Op = BinaryOp::Div;
        break;
      case AssignOp::Rem:
        Op = BinaryOp::Rem;
        break;
      case AssignOp::Shl:
        Op = BinaryOp::Shl;
        break;
      case AssignOp::Shr:
        Op = BinaryOp::Shr;
        break;
      case AssignOp::And:
        Op = BinaryOp::BitAnd;
        break;
      case AssignOp::Or:
        Op = BinaryOp::BitOr;
        break;
      case AssignOp::Xor:
        Op = BinaryOp::BitXor;
        break;
      case AssignOp::Assign:
        assert(false && "handled above");
        return Value::makeVoid();
      }
      Result = convert(applyBinary(Op, Old, R, E.Line), Ty);
    }
    if (Trapped)
      return Value::makeVoid();
    store(Addr, Result);
    return Result;
  }

  case ExprKind::Call:
    return evalCall(exprCast<CallExpr>(E));

  case ExprKind::Index: {
    Ptr Addr;
    Type Ty;
    if (!evalLvalue(E, Addr, Ty))
      return Value::makeVoid();
    return load(Addr, Ty);
  }
  }
  assert(false && "unknown ExprKind");
  return Value::makeVoid();
}

/// Evaluates a statement condition. Sites route through the rt::cond hook
/// — the moral injection point of the paper's LLVM pass.
///
/// The promotion to double (Sect. 5.3) must happen AFTER C's usual
/// arithmetic conversions, or the hook's comparison diverges from the
/// program's: in `unsigned j; int i1; if (j < i1)` C converts i1 to
/// unsigned before comparing, so 0x3d8c63b1 < 0xfd8c63b1 holds — while
/// the signed value of i1 promoted to double is negative and would flip
/// the branch. (Fdlibm's floor/ceil carry tests hit exactly this.)
bool Evaluator::evalCondition(const Expr &Cond, uint32_t Site,
                              bool &Outcome) {
  if (Site != kNoSite) {
    const auto &B = exprCast<BinaryExpr>(Cond);
    Value L = evalExpr(*B.Lhs);
    Value R = evalExpr(*B.Rhs);
    if (Trapped)
      return false;
    double A, C;
    if (L.Ty.isDouble() || R.Ty.isDouble()) {
      A = asDouble(L);
      C = asDouble(R);
    } else if (L.Ty.Base == BaseType::UInt ||
               R.Ty.Base == BaseType::UInt) {
      A = static_cast<double>(asUInt32(L));
      C = static_cast<double>(asUInt32(R));
    } else {
      A = static_cast<double>(asInt32(L));
      C = static_cast<double>(asInt32(R));
    }
    Outcome = rt::cond(Site, toCmpOp(B.Op), A, C);
    return !Trapped;
  }
  Value V = evalExpr(Cond);
  if (Trapped)
    return false;
  Outcome = truthy(V);
  return true;
}

void Evaluator::initLocal(const VarDecl &D) {
  Ptr Addr = addressOf(D);
  if (D.isArray()) {
    // Zero-fill, then evaluate any initializer elements.
    uint8_t *Mem = resolve(Addr, D.storageBytes());
    if (!Mem)
      return;
    std::memset(Mem, 0, D.storageBytes());
    for (size_t I = 0; I < D.InitList.size(); ++I) {
      Value V = convert(evalExpr(*D.InitList[I]), D.DeclType);
      if (Trapped)
        return;
      Ptr Elem = Addr;
      Elem.Offset += static_cast<uint32_t>(I * D.DeclType.sizeInBytes());
      store(Elem, V);
    }
    return;
  }
  Value V = D.Init ? convert(evalExpr(*D.Init), D.DeclType)
                   : convert(Value::makeInt(0), D.DeclType);
  if (!Trapped)
    store(Addr, V);
}

Flow Evaluator::execStmt(const Stmt &S, Value &ReturnValue) {
  if (!step())
    return Flow::Return;
  switch (S.Kind) {
  case StmtKind::Expr:
    evalExpr(*stmtCast<ExprStmt>(S).E);
    return Trapped ? Flow::Return : Flow::Normal;

  case StmtKind::Decl:
    for (const auto &D : stmtCast<DeclStmt>(S).Decls) {
      initLocal(*D);
      if (Trapped)
        return Flow::Return;
    }
    return Flow::Normal;

  case StmtKind::Block:
    for (const auto &Child : stmtCast<BlockStmt>(S).Body) {
      Flow F = execStmt(*Child, ReturnValue);
      if (F != Flow::Normal)
        return F;
    }
    return Flow::Normal;

  case StmtKind::If: {
    const auto &If = stmtCast<IfStmt>(S);
    bool Taken;
    if (!evalCondition(*If.Cond, If.Site, Taken))
      return Flow::Return;
    if (Taken)
      return execStmt(*If.Then, ReturnValue);
    if (If.Else)
      return execStmt(*If.Else, ReturnValue);
    return Flow::Normal;
  }

  case StmtKind::While: {
    const auto &W = stmtCast<WhileStmt>(S);
    while (true) {
      bool Taken;
      if (!evalCondition(*W.Cond, W.Site, Taken))
        return Flow::Return;
      if (!Taken)
        return Flow::Normal;
      Flow F = execStmt(*W.Body, ReturnValue);
      if (F == Flow::Break)
        return Flow::Normal;
      if (F == Flow::Return)
        return F;
    }
  }

  case StmtKind::DoWhile: {
    const auto &D = stmtCast<DoWhileStmt>(S);
    while (true) {
      Flow F = execStmt(*D.Body, ReturnValue);
      if (F == Flow::Break)
        return Flow::Normal;
      if (F == Flow::Return)
        return F;
      bool Again;
      if (!evalCondition(*D.Cond, D.Site, Again))
        return Flow::Return;
      if (!Again)
        return Flow::Normal;
    }
  }

  case StmtKind::For: {
    const auto &F = stmtCast<ForStmt>(S);
    if (F.Init) {
      Flow InitFlow = execStmt(*F.Init, ReturnValue);
      if (InitFlow == Flow::Return)
        return InitFlow;
    }
    while (true) {
      if (F.Cond) {
        bool Taken;
        if (!evalCondition(*F.Cond, F.Site, Taken))
          return Flow::Return;
        if (!Taken)
          return Flow::Normal;
      }
      Flow BodyFlow = execStmt(*F.Body, ReturnValue);
      if (BodyFlow == Flow::Break)
        return Flow::Normal;
      if (BodyFlow == Flow::Return)
        return BodyFlow;
      if (F.Step) {
        evalExpr(*F.Step);
        if (Trapped)
          return Flow::Return;
      }
    }
  }

  case StmtKind::Return: {
    const auto &R = stmtCast<ReturnStmt>(S);
    if (R.Value) {
      ReturnValue = evalExpr(*R.Value);
      if (Trapped)
        return Flow::Return;
    } else {
      ReturnValue = Value::makeVoid();
    }
    return Flow::Return;
  }

  case StmtKind::Break:
    return Flow::Break;
  case StmtKind::Continue:
    return Flow::Continue;
  case StmtKind::Empty:
    return Flow::Normal;
  }
  assert(false && "unknown StmtKind");
  return Flow::Normal;
}

Value Evaluator::call(const FunctionDecl &F, std::vector<Value> Args) {
  assert(Args.size() == F.Params.size() && "argument count mismatch");
  if (Frames.size() >= Interp.options().MaxCallDepth)
    return trap("call depth limit exceeded");
  uint32_t Base = StackTop;
  uint64_t Needed = static_cast<uint64_t>(Base) + F.FrameBytes;
  if (Needed > Interp.options().MaxStackBytes)
    return trap("interpreter stack overflow");
  if (Stack.size() < Needed)
    Stack.resize(Needed, 0);
  StackTop = static_cast<uint32_t>(Needed);
  Frames.push_back({Base, &F});

  for (size_t I = 0; I < Args.size(); ++I)
    store(addressOf(*F.Params[I]), convert(Args[I], F.Params[I]->DeclType));

  Value ReturnValue = Value::makeVoid();
  if (!Trapped)
    execStmt(*F.Body, ReturnValue);

  Frames.pop_back();
  StackTop = Base;
  if (Trapped)
    return Value::makeVoid();
  if (F.ReturnType.isVoid())
    return Value::makeVoid();
  return convert(ReturnValue, F.ReturnType);
}

void Interpreter::initializeGlobals() {
  GlobalMem.assign(TU.GlobalBytes, 0);
  Evaluator Eval(*this);
  Eval.StepsLeft = Opts.MaxSteps;
  // Globals initialize in declaration order; later initializers may read
  // earlier globals (Fdlibm's tables are all literal-initialized anyway).
  for (const auto &G : TU.Globals) {
    Eval.Frames.push_back({0, nullptr}); // dummy frame for addressOf
    Eval.initLocal(*G);
    Eval.Frames.pop_back();
    if (Eval.trapped()) {
      TrapMessage = "global initializer: " + Eval.trapMessage();
      return;
    }
  }
}

Interpreter::Interpreter(const TranslationUnit &TU, InterpOptions Opts)
    : TU(TU), Opts(Opts) {
  initializeGlobals();
}

double Interpreter::callEntry(const FunctionDecl &F, const double *Args) {
  TrapMessage.clear();
  Evaluator Eval(*this);
  Eval.StepsLeft = Opts.MaxSteps;

  // Entry lowering (Sect. 5.3): double binds directly; double* binds a
  // fresh cell seeded with the argument; int/unsigned truncate.
  std::vector<Value> Bound;
  Bound.reserve(F.Params.size());
  // Pointer-parameter cells live at the bottom of the stack arena, below
  // the first frame.
  uint32_t CellBytes = 0;
  for (const auto &P : F.Params)
    if (P->DeclType.isPointer())
      CellBytes += 8;
  Eval.Stack.assign(CellBytes, 0);
  Eval.StackTop = CellBytes;
  uint32_t NextCell = 0;
  for (size_t I = 0; I < F.Params.size(); ++I) {
    const Type PTy = F.Params[I]->DeclType;
    if (PTy.isPointer()) {
      if (PTy.pointee() != Type(BaseType::Double)) {
        TrapMessage = "unsupported entry parameter type " + typeName(PTy);
        return std::numeric_limits<double>::quiet_NaN();
      }
      Ptr Cell;
      Cell.Space = AddrSpace::Stack;
      Cell.Offset = NextCell;
      NextCell += 8;
      std::memcpy(Eval.Stack.data() + Cell.Offset, &Args[I], 8);
      Bound.push_back(Value::makePtr(PTy, Cell));
      continue;
    }
    switch (PTy.Base) {
    case BaseType::Double:
      Bound.push_back(Value::makeDouble(Args[I]));
      break;
    case BaseType::Int:
      Bound.push_back(Value::makeInt(truncToInt32(Args[I])));
      break;
    case BaseType::UInt:
      Bound.push_back(Value::makeUInt(truncToUInt32(Args[I])));
      break;
    case BaseType::Void:
      TrapMessage = "void entry parameter";
      return std::numeric_limits<double>::quiet_NaN();
    }
  }

  Value Result = Eval.call(F, std::move(Bound));
  if (Eval.trapped()) {
    TrapMessage = Eval.trapMessage();
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (F.ReturnType.isVoid())
    return 0.0;
  return Eval.asDouble(Result);
}
