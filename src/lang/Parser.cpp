//===- Parser.cpp - Recursive-descent parser for the mini-C subset --------===//

#include "lang/Parser.h"

#include "instrument/Lexer.h"

#include <cstdlib>

using namespace coverme;
using namespace coverme::lang;

std::string lang::typeName(Type Ty) {
  std::string Name;
  switch (Ty.Base) {
  case BaseType::Void:
    Name = "void";
    break;
  case BaseType::Int:
    Name = "int";
    break;
  case BaseType::UInt:
    Name = "unsigned";
    break;
  case BaseType::Double:
    Name = "double";
    break;
  }
  for (unsigned I = 0; I < Ty.PtrDepth; ++I)
    Name += I == 0 ? " *" : "*";
  return Name;
}

bool lang::isComparisonOp(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::LT:
  case BinaryOp::LE:
  case BinaryOp::GT:
  case BinaryOp::GE:
  case BinaryOp::EQ:
  case BinaryOp::NE:
    return true;
  default:
    return false;
  }
}

CmpOp lang::toCmpOp(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::LT:
    return CmpOp::LT;
  case BinaryOp::LE:
    return CmpOp::LE;
  case BinaryOp::GT:
    return CmpOp::GT;
  case BinaryOp::GE:
    return CmpOp::GE;
  case BinaryOp::EQ:
    return CmpOp::EQ;
  case BinaryOp::NE:
    return CmpOp::NE;
  default:
    assert(false && "not a comparison operator");
    return CmpOp::EQ;
  }
}

std::string lang::formatDiagnostic(const Diagnostic &D) {
  return "line " + std::to_string(D.Line) + ": " + D.Message;
}

Expr::~Expr() = default;
Stmt::~Stmt() = default;

const FunctionDecl *
TranslationUnit::findFunction(const std::string &Name) const {
  for (const auto &F : Functions)
    if (F->Name == Name)
      return F.get();
  return nullptr;
}

const VarDecl *TranslationUnit::findGlobal(const std::string &Name) const {
  for (const auto &G : Globals)
    if (G->Name == Name)
      return G.get();
  return nullptr;
}

namespace {

using instrument::Token;
using instrument::TokenKind;

/// True when \p Text spells a declaration-specifier keyword.
bool isDeclSpecifier(const std::string &Text) {
  return Text == "static" || Text == "const" || Text == "unsigned" ||
         Text == "signed" || Text == "int" || Text == "double" ||
         Text == "void" || Text == "volatile" || Text == "register";
}

/// The recursive-descent parser. One instance per translation unit.
class Parser {
public:
  Parser(std::vector<Token> Tokens, std::vector<Diagnostic> &Diags)
      : Tokens(std::move(Tokens)), Diags(Diags) {}

  std::unique_ptr<TranslationUnit> parseUnit();
  ExprPtr parseSingleExpression();

private:
  std::vector<Token> Tokens;
  std::vector<Diagnostic> &Diags;
  size_t Pos = 0;

  // ----- token plumbing ---------------------------------------------------

  const Token &peek(size_t Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }

  const Token &advance() {
    const Token &T = peek();
    if (Pos < Tokens.size() - 1)
      ++Pos;
    return T;
  }

  bool atEnd() const { return peek().is(TokenKind::EndOfFile); }

  bool consumePunct(const char *Spelling) {
    if (!peek().isPunct(Spelling))
      return false;
    advance();
    return true;
  }

  bool consumeKeyword(const char *Name) {
    if (!peek().isIdentifier(Name))
      return false;
    advance();
    return true;
  }

  void error(const std::string &Message) {
    Diags.push_back({peek().Line, Message});
  }

  /// Requires punctuation \p Spelling; reports an error if absent.
  bool expectPunct(const char *Spelling) {
    if (consumePunct(Spelling))
      return true;
    error(std::string("expected '") + Spelling + "' before '" + peek().Text +
          "'");
    return false;
  }

  /// Skips tokens until just past the next ';' (or a '}' boundary) so one
  /// malformed construct does not cascade.
  void synchronize() {
    unsigned Depth = 0;
    while (!atEnd()) {
      const Token &T = advance();
      if (T.isPunct("{"))
        ++Depth;
      else if (T.isPunct("}")) {
        if (Depth == 0)
          return;
        --Depth;
      } else if (T.isPunct(";") && Depth == 0)
        return;
    }
  }

  // ----- types and declarators --------------------------------------------

  /// True when the current token begins a declaration.
  bool startsDeclaration() const {
    return peek().is(TokenKind::Identifier) && isDeclSpecifier(peek().Text);
  }

  /// Parses decl-specifiers; returns false when no type keyword appears.
  bool parseDeclSpecifiers(BaseType &Base) {
    bool SawType = false;
    bool SawUnsigned = false;
    Base = BaseType::Int;
    while (peek().is(TokenKind::Identifier) && isDeclSpecifier(peek().Text)) {
      const std::string &KW = advance().Text;
      if (KW == "int") {
        SawType = true;
      } else if (KW == "double") {
        Base = BaseType::Double;
        SawType = true;
      } else if (KW == "void") {
        Base = BaseType::Void;
        SawType = true;
      } else if (KW == "unsigned") {
        SawUnsigned = true;
        SawType = true;
      }
      // static / const / signed / volatile / register carry no semantic
      // weight in the interpreter's memory model.
    }
    if (SawUnsigned && Base == BaseType::Int)
      Base = BaseType::UInt;
    return SawType;
  }

  /// Parses '*'* name and optional [N] suffix into \p D.
  bool parseDeclarator(BaseType Base, VarDecl &D) {
    uint8_t Depth = 0;
    while (consumePunct("*"))
      ++Depth;
    if (!peek().is(TokenKind::Identifier) || isDeclSpecifier(peek().Text)) {
      error("expected declarator name");
      return false;
    }
    D.Line = peek().Line;
    D.Name = advance().Text;
    D.DeclType = Type(Base, Depth);
    if (consumePunct("[")) {
      if (!peek().is(TokenKind::Number)) {
        error("array size must be an integer literal");
        return false;
      }
      D.ArraySize = static_cast<unsigned>(
          std::strtoul(advance().Text.c_str(), nullptr, 0));
      if (D.ArraySize == 0) {
        error("array size must be positive");
        return false;
      }
      if (!expectPunct("]"))
        return false;
    }
    return true;
  }

  /// Whether '(' at the current position opens a cast, i.e. is followed by
  /// a type keyword (the subset has no typedef names).
  bool peekIsCast() const {
    if (!peek().isPunct("("))
      return false;
    const Token &Next = peek(1);
    return Next.is(TokenKind::Identifier) && isDeclSpecifier(Next.Text) &&
           Next.Text != "static" && Next.Text != "register";
  }

  // ----- expressions -------------------------------------------------------

  ExprPtr parsePrimary();
  ExprPtr parsePostfix();
  ExprPtr parseUnary();
  ExprPtr parseBinary(int MinPrecedence);
  ExprPtr parseConditional();
  ExprPtr parseAssignment();
  ExprPtr parseExpressionNode();

  // ----- statements ---------------------------------------------------------

  StmtPtr parseStatement();
  std::unique_ptr<BlockStmt> parseBlock();
  std::unique_ptr<DeclStmt> parseDeclStmt();

  // ----- top level -----------------------------------------------------------

  void parseTopLevel(TranslationUnit &TU);
};

/// Parses a Number token's text into an IntLiteral or DoubleLiteral node.
ExprPtr parseNumberToken(const Token &T, std::vector<Diagnostic> &Diags) {
  std::string Text = T.Text;
  bool Unsigned = false;
  // Strip integer/float suffixes.
  while (!Text.empty()) {
    char C = Text.back();
    if (C == 'u' || C == 'U') {
      Unsigned = true;
      Text.pop_back();
    } else if (C == 'l' || C == 'L' || C == 'f' || C == 'F') {
      // 'f'/'F' could close a hex literal (0x...F); only strip it as a
      // suffix for non-hex spellings.
      if (Text.size() > 1 && (Text[1] == 'x' || Text[1] == 'X') &&
          (C == 'f' || C == 'F'))
        break;
      Text.pop_back();
    } else {
      break;
    }
  }
  bool IsHex = Text.size() > 1 && (Text[1] == 'x' || Text[1] == 'X');
  bool IsFloat =
      !IsHex && (Text.find('.') != std::string::npos ||
                 Text.find('e') != std::string::npos ||
                 Text.find('E') != std::string::npos);
  if (IsFloat) {
    auto Node = std::make_unique<DoubleLiteralExpr>();
    Node->Line = T.Line;
    Node->Value = std::strtod(Text.c_str(), nullptr);
    return Node;
  }
  auto Node = std::make_unique<IntLiteralExpr>();
  Node->Line = T.Line;
  char *End = nullptr;
  Node->Value = std::strtoull(Text.c_str(), &End, 0);
  if (End && *End != '\0')
    Diags.push_back({T.Line, "malformed integer literal '" + T.Text + "'"});
  // Large literals type as unsigned, matching how C types Fdlibm's masks
  // like 0x80000000 within 32 bits.
  Node->IsUnsigned = Unsigned || Node->Value > 0x7fffffffull;
  return Node;
}

ExprPtr Parser::parsePrimary() {
  const Token &T = peek();
  if (T.is(TokenKind::Number))
    return parseNumberToken(advance(), Diags);
  if (T.isPunct("(")) {
    advance();
    ExprPtr Inner = parseExpressionNode();
    expectPunct(")");
    return Inner;
  }
  if (T.is(TokenKind::Identifier) && !isDeclSpecifier(T.Text)) {
    unsigned Line = T.Line;
    std::string Name = advance().Text;
    if (consumePunct("(")) {
      auto Call = std::make_unique<CallExpr>();
      Call->Line = Line;
      Call->Name = std::move(Name);
      if (!peek().isPunct(")")) {
        do {
          ExprPtr Arg = parseAssignment();
          if (!Arg)
            return nullptr;
          Call->Args.push_back(std::move(Arg));
        } while (consumePunct(","));
      }
      expectPunct(")");
      return Call;
    }
    auto Ref = std::make_unique<VarRefExpr>();
    Ref->Line = Line;
    Ref->Name = std::move(Name);
    return Ref;
  }
  error("expected expression before '" + T.Text + "'");
  return nullptr;
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  while (E) {
    if (peek().isPunct("[")) {
      unsigned Line = advance().Line;
      auto Node = std::make_unique<IndexExpr>();
      Node->Line = Line;
      Node->Base = std::move(E);
      Node->Index = parseExpressionNode();
      if (!Node->Index)
        return nullptr;
      expectPunct("]");
      E = std::move(Node);
      continue;
    }
    if (peek().isPunct("++") || peek().isPunct("--")) {
      auto Node = std::make_unique<PostfixExpr>();
      Node->Line = peek().Line;
      Node->IsIncrement = peek().isPunct("++");
      advance();
      Node->Operand = std::move(E);
      E = std::move(Node);
      continue;
    }
    break;
  }
  return E;
}

ExprPtr Parser::parseUnary() {
  const Token &T = peek();
  auto MakeUnary = [&](UnaryOp Op) -> ExprPtr {
    auto Node = std::make_unique<UnaryExpr>();
    Node->Line = T.Line;
    Node->Op = Op;
    advance();
    Node->Operand = parseUnary();
    return Node->Operand ? std::move(Node) : nullptr;
  };
  if (T.isPunct("-"))
    return MakeUnary(UnaryOp::Neg);
  if (T.isPunct("+")) { // unary plus: parse and drop
    advance();
    return parseUnary();
  }
  if (T.isPunct("!"))
    return MakeUnary(UnaryOp::LogNot);
  if (T.isPunct("~"))
    return MakeUnary(UnaryOp::BitNot);
  if (T.isPunct("*"))
    return MakeUnary(UnaryOp::Deref);
  if (T.isPunct("&"))
    return MakeUnary(UnaryOp::AddrOf);
  if (T.isPunct("++"))
    return MakeUnary(UnaryOp::PreInc);
  if (T.isPunct("--"))
    return MakeUnary(UnaryOp::PreDec);
  if (peekIsCast()) {
    unsigned Line = T.Line;
    advance(); // '('
    BaseType Base;
    if (!parseDeclSpecifiers(Base)) {
      error("expected type in cast");
      return nullptr;
    }
    uint8_t Depth = 0;
    while (consumePunct("*"))
      ++Depth;
    if (!expectPunct(")"))
      return nullptr;
    auto Node = std::make_unique<CastExpr>();
    Node->Line = Line;
    Node->Target = Type(Base, Depth);
    Node->Operand = parseUnary();
    return Node->Operand ? std::move(Node) : nullptr;
  }
  return parsePostfix();
}

/// Binary operator precedence (higher binds tighter); -1 for non-operators.
int binaryPrecedence(const Token &T, BinaryOp &Op) {
  if (!T.is(TokenKind::Punct))
    return -1;
  const std::string &S = T.Text;
  if (S == "*") {
    Op = BinaryOp::Mul;
    return 10;
  }
  if (S == "/") {
    Op = BinaryOp::Div;
    return 10;
  }
  if (S == "%") {
    Op = BinaryOp::Rem;
    return 10;
  }
  if (S == "+") {
    Op = BinaryOp::Add;
    return 9;
  }
  if (S == "-") {
    Op = BinaryOp::Sub;
    return 9;
  }
  if (S == "<<") {
    Op = BinaryOp::Shl;
    return 8;
  }
  if (S == ">>") {
    Op = BinaryOp::Shr;
    return 8;
  }
  if (S == "<") {
    Op = BinaryOp::LT;
    return 7;
  }
  if (S == "<=") {
    Op = BinaryOp::LE;
    return 7;
  }
  if (S == ">") {
    Op = BinaryOp::GT;
    return 7;
  }
  if (S == ">=") {
    Op = BinaryOp::GE;
    return 7;
  }
  if (S == "==") {
    Op = BinaryOp::EQ;
    return 6;
  }
  if (S == "!=") {
    Op = BinaryOp::NE;
    return 6;
  }
  if (S == "&") {
    Op = BinaryOp::BitAnd;
    return 5;
  }
  if (S == "^") {
    Op = BinaryOp::BitXor;
    return 4;
  }
  if (S == "|") {
    Op = BinaryOp::BitOr;
    return 3;
  }
  if (S == "&&") {
    Op = BinaryOp::LogAnd;
    return 2;
  }
  if (S == "||") {
    Op = BinaryOp::LogOr;
    return 1;
  }
  return -1;
}

ExprPtr Parser::parseBinary(int MinPrecedence) {
  ExprPtr Lhs = parseUnary();
  if (!Lhs)
    return nullptr;
  while (true) {
    BinaryOp Op = BinaryOp::Add; // set by binaryPrecedence whenever Prec >= MinPrecedence
    int Prec = binaryPrecedence(peek(), Op);
    if (Prec < MinPrecedence)
      return Lhs;
    unsigned Line = advance().Line;
    ExprPtr Rhs = parseBinary(Prec + 1); // all binary operators left-assoc
    if (!Rhs)
      return nullptr;
    auto Node = std::make_unique<BinaryExpr>();
    Node->Line = Line;
    Node->Op = Op;
    Node->Lhs = std::move(Lhs);
    Node->Rhs = std::move(Rhs);
    Lhs = std::move(Node);
  }
}

ExprPtr Parser::parseConditional() {
  ExprPtr Cond = parseBinary(1);
  if (!Cond || !peek().isPunct("?"))
    return Cond;
  unsigned Line = advance().Line;
  auto Node = std::make_unique<TernaryExpr>();
  Node->Line = Line;
  Node->Cond = std::move(Cond);
  Node->TrueExpr = parseExpressionNode();
  if (!Node->TrueExpr || !expectPunct(":"))
    return nullptr;
  Node->FalseExpr = parseConditional();
  return Node->FalseExpr ? std::move(Node) : nullptr;
}

/// Assignment operator spellings; -1 when the token is not one.
bool assignOpFor(const Token &T, AssignOp &Op) {
  if (!T.is(TokenKind::Punct))
    return false;
  const std::string &S = T.Text;
  if (S == "=")
    Op = AssignOp::Assign;
  else if (S == "+=")
    Op = AssignOp::Add;
  else if (S == "-=")
    Op = AssignOp::Sub;
  else if (S == "*=")
    Op = AssignOp::Mul;
  else if (S == "/=")
    Op = AssignOp::Div;
  else if (S == "%=")
    Op = AssignOp::Rem;
  else if (S == "<<=")
    Op = AssignOp::Shl;
  else if (S == ">>=")
    Op = AssignOp::Shr;
  else if (S == "&=")
    Op = AssignOp::And;
  else if (S == "|=")
    Op = AssignOp::Or;
  else if (S == "^=")
    Op = AssignOp::Xor;
  else
    return false;
  return true;
}

ExprPtr Parser::parseAssignment() {
  ExprPtr Lhs = parseConditional();
  if (!Lhs)
    return nullptr;
  AssignOp Op;
  if (!assignOpFor(peek(), Op))
    return Lhs;
  unsigned Line = advance().Line;
  auto Node = std::make_unique<AssignExpr>();
  Node->Line = Line;
  Node->Op = Op;
  Node->Lhs = std::move(Lhs);
  Node->Rhs = parseAssignment(); // right-associative
  return Node->Rhs ? std::move(Node) : nullptr;
}

ExprPtr Parser::parseExpressionNode() {
  // The comma operator folds left-to-right; only the last value survives.
  // Fdlibm uses it in for-headers like `for (ix = -1043, i = lx; ...)`.
  ExprPtr E = parseAssignment();
  while (E && peek().isPunct(",")) {
    unsigned Line = advance().Line;
    ExprPtr Rhs = parseAssignment();
    if (!Rhs)
      return nullptr;
    auto Node = std::make_unique<BinaryExpr>();
    Node->Line = Line;
    Node->Op = BinaryOp::Comma;
    Node->Lhs = std::move(E);
    Node->Rhs = std::move(Rhs);
    E = std::move(Node);
  }
  return E;
}

StmtPtr Parser::parseStatement() {
  const Token &T = peek();
  unsigned Line = T.Line;

  if (T.isPunct("{"))
    return parseBlock();

  if (T.isPunct(";")) {
    advance();
    auto S = std::make_unique<EmptyStmt>();
    S->Line = Line;
    return S;
  }

  if (consumeKeyword("if")) {
    auto S = std::make_unique<IfStmt>();
    S->Line = Line;
    expectPunct("(");
    S->Cond = parseExpressionNode();
    if (!S->Cond)
      return nullptr;
    expectPunct(")");
    S->Then = parseStatement();
    if (!S->Then)
      return nullptr;
    if (consumeKeyword("else")) {
      S->Else = parseStatement();
      if (!S->Else)
        return nullptr;
    }
    return S;
  }

  if (consumeKeyword("while")) {
    auto S = std::make_unique<WhileStmt>();
    S->Line = Line;
    expectPunct("(");
    S->Cond = parseExpressionNode();
    if (!S->Cond)
      return nullptr;
    expectPunct(")");
    S->Body = parseStatement();
    return S->Body ? std::move(S) : nullptr;
  }

  if (consumeKeyword("do")) {
    auto S = std::make_unique<DoWhileStmt>();
    S->Line = Line;
    S->Body = parseStatement();
    if (!S->Body)
      return nullptr;
    if (!consumeKeyword("while")) {
      error("expected 'while' after do-body");
      return nullptr;
    }
    expectPunct("(");
    S->Cond = parseExpressionNode();
    if (!S->Cond)
      return nullptr;
    expectPunct(")");
    expectPunct(";");
    return S;
  }

  if (consumeKeyword("for")) {
    auto S = std::make_unique<ForStmt>();
    S->Line = Line;
    expectPunct("(");
    if (!consumePunct(";")) {
      if (startsDeclaration()) {
        S->Init = parseDeclStmt();
      } else {
        auto Init = std::make_unique<ExprStmt>();
        Init->Line = peek().Line;
        Init->E = parseExpressionNode();
        if (!Init->E)
          return nullptr;
        S->Init = std::move(Init);
        expectPunct(";");
      }
    }
    if (!peek().isPunct(";")) {
      S->Cond = parseExpressionNode();
      if (!S->Cond)
        return nullptr;
    }
    expectPunct(";");
    if (!peek().isPunct(")")) {
      S->Step = parseExpressionNode();
      if (!S->Step)
        return nullptr;
    }
    expectPunct(")");
    S->Body = parseStatement();
    return S->Body ? std::move(S) : nullptr;
  }

  if (consumeKeyword("return")) {
    auto S = std::make_unique<ReturnStmt>();
    S->Line = Line;
    if (!peek().isPunct(";")) {
      S->Value = parseExpressionNode();
      if (!S->Value)
        return nullptr;
    }
    expectPunct(";");
    return S;
  }

  if (consumeKeyword("break")) {
    expectPunct(";");
    auto S = std::make_unique<BreakStmt>();
    S->Line = Line;
    return S;
  }

  if (consumeKeyword("continue")) {
    expectPunct(";");
    auto S = std::make_unique<ContinueStmt>();
    S->Line = Line;
    return S;
  }

  if (startsDeclaration())
    return parseDeclStmt();

  auto S = std::make_unique<ExprStmt>();
  S->Line = Line;
  S->E = parseExpressionNode();
  if (!S->E)
    return nullptr;
  expectPunct(";");
  return S;
}

std::unique_ptr<BlockStmt> Parser::parseBlock() {
  auto Block = std::make_unique<BlockStmt>();
  Block->Line = peek().Line;
  if (!expectPunct("{"))
    return Block;
  while (!atEnd() && !peek().isPunct("}")) {
    StmtPtr S = parseStatement();
    if (!S) {
      synchronize();
      continue;
    }
    Block->Body.push_back(std::move(S));
  }
  expectPunct("}");
  return Block;
}

std::unique_ptr<DeclStmt> Parser::parseDeclStmt() {
  auto DS = std::make_unique<DeclStmt>();
  DS->Line = peek().Line;
  BaseType Base;
  if (!parseDeclSpecifiers(Base)) {
    error("expected type in declaration");
    return nullptr;
  }
  do {
    auto D = std::make_unique<VarDecl>();
    D->Storage = StorageKind::Local;
    if (!parseDeclarator(Base, *D))
      return nullptr;
    if (consumePunct("=")) {
      if (peek().isPunct("{")) {
        advance();
        do {
          ExprPtr Elem = parseAssignment();
          if (!Elem)
            return nullptr;
          D->InitList.push_back(std::move(Elem));
        } while (consumePunct(","));
        expectPunct("}");
      } else {
        D->Init = parseAssignment();
        if (!D->Init)
          return nullptr;
      }
    }
    DS->Decls.push_back(std::move(D));
  } while (consumePunct(","));
  expectPunct(";");
  return DS;
}

void Parser::parseTopLevel(TranslationUnit &TU) {
  BaseType Base;
  unsigned Line = peek().Line;
  if (!parseDeclSpecifiers(Base)) {
    error("expected declaration at file scope, got '" + peek().Text + "'");
    synchronize();
    return;
  }

  auto First = std::make_unique<VarDecl>();
  if (!parseDeclarator(Base, *First)) {
    synchronize();
    return;
  }

  if (peek().isPunct("(")) {
    // Function definition.
    auto Fn = std::make_unique<FunctionDecl>();
    Fn->Line = Line;
    Fn->Name = First->Name;
    Fn->ReturnType = First->DeclType;
    advance(); // '('
    if (peek().isIdentifier("void") && peek(1).isPunct(")")) {
      advance(); // `(void)` parameter list
    } else if (!peek().isPunct(")")) {
      do {
        BaseType PBase;
        if (!parseDeclSpecifiers(PBase)) {
          error("expected parameter type");
          synchronize();
          return;
        }
        auto P = std::make_unique<VarDecl>();
        P->Storage = StorageKind::Param;
        if (!parseDeclarator(PBase, *P)) {
          synchronize();
          return;
        }
        Fn->Params.push_back(std::move(P));
      } while (consumePunct(","));
    }
    if (!expectPunct(")")) {
      synchronize();
      return;
    }
    if (consumePunct(";"))
      return; // forward declaration: body comes later (or is external)
    Fn->Body = parseBlock();
    TU.Functions.push_back(std::move(Fn));
    return;
  }

  // Global variable declaration(s).
  First->Storage = StorageKind::Global;
  auto ParseInit = [&](VarDecl &D) -> bool {
    if (!consumePunct("="))
      return true;
    if (peek().isPunct("{")) {
      advance();
      do {
        ExprPtr Elem = parseAssignment();
        if (!Elem)
          return false;
        D.InitList.push_back(std::move(Elem));
      } while (consumePunct(","));
      return expectPunct("}");
    }
    D.Init = parseAssignment();
    return D.Init != nullptr;
  };
  if (!ParseInit(*First)) {
    synchronize();
    return;
  }
  TU.Globals.push_back(std::move(First));
  while (consumePunct(",")) {
    auto D = std::make_unique<VarDecl>();
    D->Storage = StorageKind::Global;
    if (!parseDeclarator(Base, *D) || !ParseInit(*D)) {
      synchronize();
      return;
    }
    TU.Globals.push_back(std::move(D));
  }
  expectPunct(";");
}

std::unique_ptr<TranslationUnit> Parser::parseUnit() {
  auto TU = std::make_unique<TranslationUnit>();
  while (!atEnd())
    parseTopLevel(*TU);
  return TU;
}

ExprPtr Parser::parseSingleExpression() {
  ExprPtr E = parseExpressionNode();
  if (E && !atEnd())
    error("trailing tokens after expression");
  return E;
}

} // namespace

ParseResult lang::parseTranslationUnit(const std::string &Source) {
  ParseResult Result;
  Parser P(instrument::lex(Source), Result.Diags);
  Result.TU = P.parseUnit();
  return Result;
}

ExprPtr lang::parseExpression(const std::string &Source,
                              std::vector<Diagnostic> &Diags) {
  Parser P(instrument::lex(Source), Diags);
  ExprPtr E = P.parseSingleExpression();
  return Diags.empty() ? std::move(E) : nullptr;
}
