//===- Jit.h - Template JIT for the bytecode tier -------------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The third executor: an x86-64 template JIT over lang/Bytecode.h. Each
/// eligible function is compiled once, instruction by instruction, into a
/// native fragment — straight-line arithmetic, loads/stores, compares and
/// branches become machine code; CondSite instrumentation calls back into
/// rt::cond through a C bridge in the same order the VM would fire it; and
/// the VM's block-granular step accounting is baked in as per-edge budget
/// charges, so exhaustion points are bit-identical to both existing tiers.
///
/// Eligibility is per function (CanJit, mirroring the compiler's
/// WritesGlobals clamp): a function whose reachable body contains an
/// Op::Call — or any shape the emitter cannot prove safe, such as an
/// inconsistent operand-stack depth at a join — gets no fragment and its
/// entries fall back to the interpreter VM transparently. Traps do not
/// bail to the VM: every VM trap (null deref, OOB, division by zero,
/// budget exhaustion, TrapOp) has a native exit path that reports the
/// identical message through Vm::trapMessage(), keeping trap-to-NaN
/// semantics observably equal.
///
/// Fragments run inside a Vm probe (Vm::boundProbe routes to the fragment
/// when one is bound): the Vm still owns all mutable state — frame arena,
/// global arena copy, step budget — and the fragment receives it through a
/// JitFrame. Code lives in a sealed W^X ExecMemory arena owned by the
/// JitUnit, which also shares ownership of the CompiledUnit it mirrors.
///
/// Builds without COVERME_JIT (or on non-x86-64 targets) keep this API but
/// available() is false and build() returns null; callers degrade to the
/// plain bytecode tier.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_LANG_JIT_H
#define COVERME_LANG_JIT_H

#include "lang/Bytecode.h"
#include "support/ExecMemory.h"

#include <memory>
#include <vector>

namespace coverme {
namespace lang {
namespace bc {

/// The mutable state a fragment executes against, lent by the owning Vm
/// for the duration of one probe. Field offsets are part of the fragment
/// ABI (the emitter hard-codes them); keep in sync with Jit.cpp.
struct JitFrame {
  uint8_t *FMem;        ///< Frame arena base (cells + the entry frame).
  uint8_t *GMem;        ///< The Vm's private global arena copy.
  const double *Pool;   ///< CompiledUnit::DoublePool.
  uint64_t StepsLeft;   ///< In: remaining budget. Out: after the run.
  uint64_t ResultBits;  ///< Out: raw slot bits of the Ret value.
  uint32_t TrapCode;    ///< Out: JitTrap; None on clean return.
  uint32_t TrapAux;     ///< Out: TrapMessages index when Code==Message.
  /// In: nonzero when no ExecutionContext is installed for this probe.
  /// rt::cond is then a pure comparison, so cond-site fragments evaluate
  /// it inline (bit-identical to evalCmp) instead of calling the bridge.
  uint64_t CondFast;
};

/// Native trap exits, mapped back to the VM's exact trap strings by
/// Vm::boundProbe's JIT path.
enum class JitTrap : uint32_t {
  None = 0,
  Budget,      ///< "step budget exhausted"
  NullDeref,   ///< "null pointer dereference"
  OutOfBounds, ///< "out-of-bounds memory access"
  DivZero,     ///< "integer division by zero"
  RemZero,     ///< "integer remainder by zero"
  BadPtrConv,  ///< "invalid conversion to pointer type"
  Message,     ///< TrapOp: CompiledUnit::TrapMessages[TrapAux]
};

/// Entry point of one compiled fragment.
using JitEntryFn = void (*)(JitFrame *);

struct JitWideFrame; // lang/JitWide.h — the 4-lane fragment family's frame

/// The immutable JIT form of one CompiledUnit: a sealed code arena plus a
/// per-function fragment table. Shareable across threads like the unit
/// itself — fragments hold no mutable state.
class JitUnit {
public:
  /// True when this build can emit and run native fragments (COVERME_JIT
  /// on an x86-64 POSIX toolchain with executable memory available).
  static bool available();

  /// Compiles every eligible function of \p Unit. Returns null when the
  /// build has no JIT, executable memory is unavailable, or no function
  /// is eligible — callers then run the unit on the plain VM tier.
  static std::shared_ptr<const JitUnit>
  build(const std::shared_ptr<const CompiledUnit> &Unit);

  /// The fragment for function \p FnIndex, or null when it fell back.
  JitEntryFn fragment(unsigned FnIndex) const {
    return FnIndex < Fragments.size() ? Fragments[FnIndex] : nullptr;
  }

  /// Per-function CanJit flag (the fall-back clamp).
  bool canJit(unsigned FnIndex) const { return fragment(FnIndex) != nullptr; }

  /// Entry point of one compiled 4-lane wide fragment (lang/JitWide.h).
  using WideFn = void (*)(JitWideFrame *);

  /// The wide fragment for function \p FnIndex, or null when the function
  /// has no 4-lane lowering (then batched entries fall down the chain:
  /// interpreted wide lane, scalar fragment rows, scalar VM).
  WideFn wideFragment(unsigned FnIndex) const {
    return FnIndex < WideFragments.size() ? WideFragments[FnIndex] : nullptr;
  }

  /// Per-function wide-JIT eligibility flag.
  bool canJitWide(unsigned FnIndex) const {
    return wideFragment(FnIndex) != nullptr;
  }

  /// Number of functions that compiled to fragments.
  unsigned jittedCount() const {
    unsigned N = 0;
    for (JitEntryFn F : Fragments)
      if (F)
        ++N;
    return N;
  }

  /// Number of functions that also compiled to wide fragments.
  unsigned wideJittedCount() const {
    unsigned N = 0;
    for (WideFn F : WideFragments)
      if (F)
        ++N;
    return N;
  }

  /// Bytes of sealed machine code.
  size_t codeBytes() const { return Mem.size(); }

  const CompiledUnit &unit() const { return *Unit; }

private:
  JitUnit() = default;

  std::shared_ptr<const CompiledUnit> Unit;
  ExecMemory Mem;
  std::vector<JitEntryFn> Fragments;
  std::vector<WideFn> WideFragments;
};

} // namespace bc
} // namespace lang
} // namespace coverme

#endif // COVERME_LANG_JIT_H
