//===- Sema.h - Semantic analysis for the mini-C subset -------------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic analysis over the parser's tree: resolves names, computes and
/// caches expression types (C's usual arithmetic conversions restricted to
/// int / unsigned / double), lays out storage (byte offsets into the global
/// and frame arenas the interpreter executes against), and numbers the
/// conditional sites the runtime hooks report on. Site numbering follows
/// the same policy as the source-to-source Instrumenter and the paper's
/// LLVM pass: a condition that is exactly one arithmetic comparison
/// `a op b` becomes a site (Def. 3.1(b)); compound and pointer conditions
/// are left uninstrumented (Sect. 5.3).
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_LANG_SEMA_H
#define COVERME_LANG_SEMA_H

#include "lang/Parser.h"

namespace coverme {
namespace lang {

/// Names of the libm builtins calls may resolve to (fabs, sqrt, sin, ...).
/// Returns the builtin's parameter count, or 0 when \p Name is unknown.
unsigned builtinArity(const std::string &Name);

/// Runs semantic analysis over \p TU in place. Appends problems to
/// \p Diags; returns true when the unit is clean. A unit that fails sema
/// must not be executed.
bool analyze(TranslationUnit &TU, std::vector<Diagnostic> &Diags);

} // namespace lang
} // namespace coverme

#endif // COVERME_LANG_SEMA_H
