//===- JitAsm.h - x86-64 byte assembler + fragment eligibility ------------===//
//
// Part of the CoverMe reproduction (Fu & Su, PLDI 2017).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pieces the scalar template JIT (Jit.cpp) and the 4-lane wide JIT
/// (JitWide.cpp) share: a minimal x86-64 byte assembler (base ISA, SSE2
/// scalar double, and the VEX-encoded AVX/AVX2 subset the wide fragments
/// use) plus the static fragment-eligibility analysis.
///
/// The analysis (FragAnalysis, scalarFragRejection, wideFragRejection) is
/// plain reachability + operand-depth inference over the bytecode and
/// compiles on every build configuration — the disassembler uses it to
/// annotate batch-backend eligibility identically whether or not the build
/// carries the JIT or the SIMD lane, so golden outputs never vary across
/// CI matrix legs. The emitters use the same analysis, which is what keeps
/// "what the disassembler says" and "what the JIT does" from drifting.
///
/// Everything here only assembles bytes into a std::vector; no part of
/// this header requires an x86-64 host to compile.
///
//===----------------------------------------------------------------------===//

#ifndef COVERME_LANG_JITASM_H
#define COVERME_LANG_JITASM_H

#include "lang/Bytecode.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace coverme {
namespace lang {
namespace bc {
namespace jit {

// GP register numbers.
enum : unsigned {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RSP = 4,
  RBP = 5,
  RSI = 6,
  RDI = 7,
  R8 = 8,
  R9 = 9,
  R10 = 10,
  R11 = 11,
  R12 = 12,
  R13 = 13,
  R14 = 14,
  R15 = 15,
};

// Condition codes (jcc = 0F 80+cc, setcc = 0F 90+cc).
enum : unsigned {
  CC_B = 0x2,  // below (CF=1)
  CC_AE = 0x3, // above-equal (CF=0)
  CC_E = 0x4,  // equal (ZF=1)
  CC_NE = 0x5, // not equal
  CC_BE = 0x6, // below-equal (CF=1 or ZF=1)
  CC_A = 0x7,  // above (CF=0 and ZF=0)
  CC_P = 0xA,  // parity (unordered)
  CC_NP = 0xB, // no parity
  CC_L = 0xC,  // signed less
  CC_GE = 0xD,
  CC_LE = 0xE,
  CC_G = 0xF,
};

//===----------------------------------------------------------------------===//
// Minimal x86-64 assembler
//===----------------------------------------------------------------------===//

class Asm {
public:
  std::vector<uint8_t> Buf;

  size_t pos() const { return Buf.size(); }
  void byte(uint8_t B) { Buf.push_back(B); }
  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      byte(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      byte(static_cast<uint8_t>(V >> (8 * I)));
  }

  // REX prefix; emitted only when a bit is set (all uses below are
  // register codes < 8 unless extension bits are wanted).
  void rex(bool W, unsigned R, unsigned X, unsigned B) {
    uint8_t P = 0x40 | (static_cast<uint8_t>(W) << 3) | (((R >> 3) & 1) << 2) |
                (((X >> 3) & 1) << 1) | ((B >> 3) & 1);
    if (P != 0x40)
      byte(P);
  }
  void rexW(unsigned R, unsigned B) {
    byte(0x48 | (((R >> 3) & 1) << 2) | ((B >> 3) & 1));
  }

  void modrmReg(unsigned Reg, unsigned Rm) {
    byte(0xC0 | ((Reg & 7) << 3) | (Rm & 7));
  }
  // [Base + disp32], always mod=10 (uniform; avoids the rbp/r13 and
  // rsp/r12 special cases biting).
  void modrmMem(unsigned Reg, unsigned Base, int32_t Disp) {
    byte(0x80 | ((Reg & 7) << 3) | (Base & 7));
    if ((Base & 7) == RSP)
      byte(0x24); // SIB: no index
    u32(static_cast<uint32_t>(Disp));
  }

  // ---- 64-bit moves -----------------------------------------------------
  void movRR64(unsigned Dst, unsigned Src) {
    rexW(Src, Dst);
    byte(0x89);
    modrmReg(Src, Dst);
  }
  void movRM64(unsigned Dst, unsigned Base, int32_t Disp) {
    rexW(Dst, Base);
    byte(0x8B);
    modrmMem(Dst, Base, Disp);
  }
  void movMR64(unsigned Base, int32_t Disp, unsigned Src) {
    rexW(Src, Base);
    byte(0x89);
    modrmMem(Src, Base, Disp);
  }
  void movRI64(unsigned Dst, uint64_t Imm) {
    rexW(0, Dst);
    byte(0xB8 + (Dst & 7));
    u64(Imm);
  }

  // ---- 32-bit moves (results zero-extend to 64) -------------------------
  void movRR32(unsigned Dst, unsigned Src) {
    rex(false, Src, 0, Dst);
    byte(0x89);
    modrmReg(Src, Dst);
  }
  void movRM32(unsigned Dst, unsigned Base, int32_t Disp) {
    rex(false, Dst, 0, Base);
    byte(0x8B);
    modrmMem(Dst, Base, Disp);
  }
  void movMR32(unsigned Base, int32_t Disp, unsigned Src) {
    rex(false, Src, 0, Base);
    byte(0x89);
    modrmMem(Src, Base, Disp);
  }
  void movRI32(unsigned Dst, uint32_t Imm) {
    rex(false, 0, 0, Dst);
    byte(0xB8 + (Dst & 7));
    u32(Imm);
  }
  // Store imm32 as a dword.
  void movMI32(unsigned Base, int32_t Disp, uint32_t Imm) {
    rex(false, 0, 0, Base);
    byte(0xC7);
    modrmMem(0, Base, Disp);
    u32(Imm);
  }
  // Store sign-extended imm32 as a qword.
  void movMI64s(unsigned Base, int32_t Disp, int32_t Imm) {
    rexW(0, Base);
    byte(0xC7);
    modrmMem(0, Base, Disp);
    u32(static_cast<uint32_t>(Imm));
  }
  // Store the low byte of \p Src (al/cl/dl/bl only: no REX is emitted for
  // the register operand, so codes >= 4 would alias spl/bpl/sil/dil).
  void movMR8(unsigned Base, int32_t Disp, unsigned Src) {
    rex(false, Src, 0, Base);
    byte(0x88);
    modrmMem(Src, Base, Disp);
  }

  // ---- sign/zero extension ----------------------------------------------
  void movsxdRM(unsigned Dst, unsigned Base, int32_t Disp) {
    rexW(Dst, Base);
    byte(0x63);
    modrmMem(Dst, Base, Disp);
  }
  void movsxdRR(unsigned Dst, unsigned Src) {
    rexW(Dst, Src);
    byte(0x63);
    modrmReg(Dst, Src);
  }
  void movzxR32M8(unsigned Dst, unsigned Base, int32_t Disp) {
    rex(false, Dst, 0, Base);
    byte(0x0F);
    byte(0xB6);
    modrmMem(Dst, Base, Disp);
  }

  // ---- ALU --------------------------------------------------------------
  // "r/m, r" forms: add=01 sub=29 and=21 or=09 xor=31 cmp=39 test=85.
  void aluRR64(uint8_t Opc, unsigned Dst, unsigned Src) {
    rexW(Src, Dst);
    byte(Opc);
    modrmReg(Src, Dst);
  }
  void aluRR32(uint8_t Opc, unsigned Dst, unsigned Src) {
    rex(false, Src, 0, Dst);
    byte(Opc);
    modrmReg(Src, Dst);
  }
  // "r, r/m" memory forms: add=03 sub=2B and=23 or=0B xor=33 cmp=3B.
  void aluRM32(uint8_t Opc, unsigned Dst, unsigned Base, int32_t Disp) {
    rex(false, Dst, 0, Base);
    byte(Opc);
    modrmMem(Dst, Base, Disp);
  }
  void aluRM64(uint8_t Opc, unsigned Dst, unsigned Base, int32_t Disp) {
    rexW(Dst, Base);
    byte(Opc);
    modrmMem(Dst, Base, Disp);
  }
  void imulRM32(unsigned Dst, unsigned Base, int32_t Disp) {
    rex(false, Dst, 0, Base);
    byte(0x0F);
    byte(0xAF);
    modrmMem(Dst, Base, Disp);
  }
  void imulRR64(unsigned Dst, unsigned Src) {
    rexW(Dst, Src);
    byte(0x0F);
    byte(0xAF);
    modrmReg(Dst, Src);
  }
  // 81 /ext forms.
  void aluRI32(uint8_t Ext, unsigned Reg, uint32_t Imm) {
    rex(false, 0, 0, Reg);
    byte(0x81);
    modrmReg(Ext, Reg);
    u32(Imm);
  }
  void aluRI64(uint8_t Ext, unsigned Reg, uint32_t Imm) {
    rexW(0, Reg);
    byte(0x81);
    modrmReg(Ext, Reg);
    u32(Imm);
  }
  void cmpRI32(unsigned Reg, uint32_t Imm) { aluRI32(7, Reg, Imm); }
  void cmpRI64(unsigned Reg, uint32_t Imm) { aluRI64(7, Reg, Imm); }
  void subRI64(unsigned Reg, uint32_t Imm) { aluRI64(5, Reg, Imm); }
  void addRI64(unsigned Reg, uint32_t Imm) { aluRI64(0, Reg, Imm); }
  void andRI32(unsigned Reg, uint32_t Imm) { aluRI32(4, Reg, Imm); }

  void testRR64(unsigned A, unsigned B) { aluRR64(0x85, A, B); }
  void testRR32(unsigned A, unsigned B) { aluRR32(0x85, A, B); }
  void testRI32(unsigned Reg, uint32_t Imm) {
    rex(false, 0, 0, Reg);
    byte(0xF7);
    modrmReg(0, Reg);
    u32(Imm);
  }

  // F7 group.
  void grp3R32(uint8_t Ext, unsigned Reg) {
    rex(false, 0, 0, Reg);
    byte(0xF7);
    modrmReg(Ext, Reg);
  }
  void negR32(unsigned Reg) { grp3R32(3, Reg); }
  void notR32(unsigned Reg) { grp3R32(2, Reg); }
  void divR32(unsigned Reg) { grp3R32(6, Reg); }
  void idivR32(unsigned Reg) { grp3R32(7, Reg); }
  void negR64(unsigned Reg) {
    rexW(0, Reg);
    byte(0xF7);
    modrmReg(3, Reg);
  }
  void cdq() { byte(0x99); }

  // Shifts by cl (hardware masks the count & 31 in 32-bit forms, exactly
  // the VM's mask).
  void shlCl32(unsigned Reg) {
    rex(false, 0, 0, Reg);
    byte(0xD3);
    modrmReg(4, Reg);
  }
  void shrCl32(unsigned Reg) {
    rex(false, 0, 0, Reg);
    byte(0xD3);
    modrmReg(5, Reg);
  }
  void sarCl32(unsigned Reg) {
    rex(false, 0, 0, Reg);
    byte(0xD3);
    modrmReg(7, Reg);
  }
  void shrRI64(unsigned Reg, uint8_t Imm) {
    rexW(0, Reg);
    byte(0xC1);
    modrmReg(5, Reg);
    byte(Imm);
  }
  void shlRI64(unsigned Reg, uint8_t Imm) {
    rexW(0, Reg);
    byte(0xC1);
    modrmReg(4, Reg);
    byte(Imm);
  }
  void shrRI32(unsigned Reg, uint8_t Imm) {
    rex(false, 0, 0, Reg);
    byte(0xC1);
    modrmReg(5, Reg);
    byte(Imm);
  }
  void shlRI32(unsigned Reg, uint8_t Imm) {
    rex(false, 0, 0, Reg);
    byte(0xC1);
    modrmReg(4, Reg);
    byte(Imm);
  }

  // setcc r8 (low registers only: al/cl).
  void setcc(unsigned CC, unsigned Reg) {
    byte(0x0F);
    byte(0x90 + CC);
    byte(0xC0 | (Reg & 7));
  }
  void movzxR32R8(unsigned Dst, unsigned Src) {
    rex(false, Dst, 0, Src);
    byte(0x0F);
    byte(0xB6);
    modrmReg(Dst, Src);
  }
  void and8RR(unsigned Dst, unsigned Src) {
    byte(0x20);
    modrmReg(Src, Dst);
  }
  void or8RR(unsigned Dst, unsigned Src) {
    byte(0x08);
    modrmReg(Src, Dst);
  }

  void leaRM(unsigned Dst, unsigned Base, int32_t Disp) {
    rexW(Dst, Base);
    byte(0x8D);
    modrmMem(Dst, Base, Disp);
  }
  void callR(unsigned Reg) {
    rex(false, 0, 0, Reg);
    byte(0xFF);
    modrmReg(2, Reg);
  }
  void push(unsigned Reg) {
    if (Reg >= 8)
      byte(0x41);
    byte(0x50 + (Reg & 7));
  }
  void pop(unsigned Reg) {
    if (Reg >= 8)
      byte(0x41);
    byte(0x58 + (Reg & 7));
  }
  void ret() { byte(0xC3); }

  // ---- SSE scalar double ------------------------------------------------
  void movsdXM(unsigned X, unsigned Base, int32_t Disp) {
    byte(0xF2);
    rex(false, X, 0, Base);
    byte(0x0F);
    byte(0x10);
    modrmMem(X, Base, Disp);
  }
  void movsdMX(unsigned Base, int32_t Disp, unsigned X) {
    byte(0xF2);
    rex(false, X, 0, Base);
    byte(0x0F);
    byte(0x11);
    modrmMem(X, Base, Disp);
  }
  // addsd=58 mulsd=59 subsd=5C divsd=5E, xmm <- [mem].
  void sseXM(uint8_t Opc, unsigned X, unsigned Base, int32_t Disp) {
    byte(0xF2);
    rex(false, X, 0, Base);
    byte(0x0F);
    byte(Opc);
    modrmMem(X, Base, Disp);
  }
  void ucomisdXR(unsigned A, unsigned B) {
    byte(0x66);
    rex(false, A, 0, B);
    byte(0x0F);
    byte(0x2E);
    modrmReg(A, B);
  }
  void xorpdXR(unsigned Dst, unsigned Src) {
    byte(0x66);
    rex(false, Dst, 0, Src);
    byte(0x0F);
    byte(0x57);
    modrmReg(Dst, Src);
  }
  void cvtsi2sdXR64(unsigned X, unsigned Reg) {
    byte(0xF2);
    rexW(X, Reg);
    byte(0x0F);
    byte(0x2A);
    modrmReg(X, Reg);
  }
  void cvtsi2sdXM64(unsigned X, unsigned Base, int32_t Disp) {
    byte(0xF2);
    rexW(X, Base);
    byte(0x0F);
    byte(0x2A);
    modrmMem(X, Base, Disp);
  }

  // ---- VEX-encoded AVX/AVX2, 256-bit unless noted -----------------------
  //
  // The wide JIT computes in ymm0-ymm5 and pins derived constants in
  // ymm14/ymm15; vex() carries the R/B extension bits for both, and a
  // memory base register >= 8 (r13 arenas) or an extended rm forces the
  // 3-byte form. pp is always 1 (the 66 prefix) for this subset.

  // 2-byte C5 when possible, else 3-byte C4. \p B extends modrm.rm (a GP
  // base or a ymm in the rm slot); \p VVVV is the first source register.
  void vex(unsigned R, unsigned B, unsigned VVVV, unsigned Map = 1,
           bool W = false, unsigned L = 1) {
    if (B < 8 && Map == 1 && !W) {
      byte(0xC5);
      byte((((R >> 3) & 1) ? 0 : 0x80) | ((~VVVV & 0xF) << 3) | (L << 2) | 1);
      return;
    }
    byte(0xC4);
    byte((((R >> 3) & 1) ? 0 : 0x80) | 0x40 |
         (((B >> 3) & 1) ? 0 : 0x20) | (Map & 0x1F));
    byte((W ? 0x80 : 0) | ((~VVVV & 0xF) << 3) | (L << 2) | 1);
  }

  // vmovapd ymm <- [base+disp] / [base+disp] <- ymm (32-byte aligned).
  void vmovapdYM(unsigned Y, unsigned Base, int32_t Disp) {
    vex(Y, Base, 0);
    byte(0x28);
    modrmMem(Y, Base, Disp);
  }
  void vmovapdMY(unsigned Base, int32_t Disp, unsigned Y) {
    vex(Y, Base, 0);
    byte(0x29);
    modrmMem(Y, Base, Disp);
  }
  // Unaligned store (the wide result slot is only 8-aligned).
  void vmovupdMY(unsigned Base, int32_t Disp, unsigned Y) {
    vex(Y, Base, 0);
    byte(0x11);
    modrmMem(Y, Base, Disp);
  }
  // vaddpd=58 vmulpd=59 vsubpd=5C vdivpd=5E vandpd=54 vandnpd=55 vxorpd=57:
  // Dst = Src1 op Src2 / Dst = Src1 op [base+disp].
  void vpdYYY(uint8_t Opc, unsigned Dst, unsigned Src1, unsigned Src2) {
    vex(Dst, Src2, Src1);
    byte(Opc);
    modrmReg(Dst, Src2);
  }
  void vpdYYM(uint8_t Opc, unsigned Dst, unsigned Src1, unsigned Base,
              int32_t Disp) {
    vex(Dst, Base, Src1);
    byte(Opc);
    modrmMem(Dst, Base, Disp);
  }
  void vxorpdYYY(unsigned Dst, unsigned Src1, unsigned Src2) {
    vpdYYY(0x57, Dst, Src1, Src2);
  }
  // vcmppd Dst = Src1 pred Src2 (all-ones/all-zeros lane masks).
  void vcmppdYYY(unsigned Dst, unsigned Src1, unsigned Src2, uint8_t Pred) {
    vpdYYY(0xC2, Dst, Src1, Src2);
    byte(Pred);
  }
  // vmovmskpd r32 <- ymm sign bits.
  void vmovmskpd(unsigned Gp, unsigned Y) {
    vex(Gp, Y, 0);
    byte(0x50);
    modrmReg(Gp, Y);
  }
  // vbroadcastsd ymm <- [base+disp] (AVX) / ymm <- xmm (AVX2).
  void vbroadcastsdYM(unsigned Y, unsigned Base, int32_t Disp) {
    vex(Y, Base, 0, 2);
    byte(0x19);
    modrmMem(Y, Base, Disp);
  }
  // vpcmpeqq (AVX2): Dst lanes = Src1 == Src2 ? ~0 : 0.
  void vpcmpeqqYYY(unsigned Dst, unsigned Src1, unsigned Src2) {
    vex(Dst, Src2, Src1, 2);
    byte(0x29);
    modrmReg(Dst, Src2);
  }
  // vpsrlq Dst = Src >> Imm (AVX2; Dst rides in VEX.vvvv for imm shifts).
  void vpsrlqYI(unsigned Dst, unsigned Src, uint8_t Imm) {
    vex(0, Src, Dst);
    byte(0x73);
    modrmReg(2, Src);
    byte(Imm);
  }
  // Remaining AVX2 immediate shifts, same vvvv-destination shape.
  void vpsllqYI(unsigned Dst, unsigned Src, uint8_t Imm) {
    vex(0, Src, Dst);
    byte(0x73);
    modrmReg(6, Src);
    byte(Imm);
  }
  void vpsrldYI(unsigned Dst, unsigned Src, uint8_t Imm) {
    vex(0, Src, Dst);
    byte(0x72);
    modrmReg(2, Src);
    byte(Imm);
  }
  void vpsradYI(unsigned Dst, unsigned Src, uint8_t Imm) {
    vex(0, Src, Dst);
    byte(0x72);
    modrmReg(4, Src);
    byte(Imm);
  }
  // Map-1 packed-integer ALU: vpaddd=FE vpsubd=FA vpaddq=D4 vpand=DB
  // vpor=EB vpxor=EF vpcmpeqd=76; Dst = Src1 op Src2.
  void vpiYYY(uint8_t Opc, unsigned Dst, unsigned Src1, unsigned Src2) {
    vex(Dst, Src2, Src1);
    byte(Opc);
    modrmReg(Dst, Src2);
  }
  // Map-2 packed-integer ops (AVX2): vpmulld=40 vpcmpgtq=37 vpsrlvd=45
  // vpsravd=46 vpsllvd=47; Dst = Src1 op Src2 (shift counts in Src2).
  void vpi2YYY(uint8_t Opc, unsigned Dst, unsigned Src1, unsigned Src2) {
    vex(Dst, Src2, Src1, 2);
    byte(Opc);
    modrmReg(Dst, Src2);
  }
  // vpshufd Dst = per-128-lane dword shuffle of Src by Imm (vvvv unused).
  void vpshufdYI(unsigned Dst, unsigned Src, uint8_t Imm) {
    vex(Dst, Src, 0);
    byte(0x70);
    modrmReg(Dst, Src);
    byte(Imm);
  }
  // vpblendd Dst = dword blend: Imm bit i set -> dword i from Src2.
  void vpblenddYYYI(unsigned Dst, unsigned Src1, unsigned Src2, uint8_t Imm) {
    vex(Dst, Src2, Src1, 3);
    byte(0x02);
    modrmReg(Dst, Src2);
    byte(Imm);
  }
  void vzeroupper() {
    byte(0xC5);
    byte(0xF8);
    byte(0x77);
  }

  // ---- control flow (rel32, patched later) ------------------------------
  size_t jmp32() {
    byte(0xE9);
    size_t P = pos();
    u32(0);
    return P;
  }
  size_t jcc32(unsigned CC) {
    byte(0x0F);
    byte(0x80 + CC);
    size_t P = pos();
    u32(0);
    return P;
  }
  void patch32(size_t Pos, size_t Target) {
    int64_t Rel = static_cast<int64_t>(Target) - static_cast<int64_t>(Pos + 4);
    uint32_t V = static_cast<uint32_t>(static_cast<int32_t>(Rel));
    for (int I = 0; I < 4; ++I)
      Buf[Pos + I] = static_cast<uint8_t>(V >> (8 * I));
  }
  void bindLocal(size_t Pos) { patch32(Pos, pos()); }
};

//===----------------------------------------------------------------------===//
// Fragment eligibility analysis (shared by both emitters and the
// disassembler; build-configuration independent)
//===----------------------------------------------------------------------===//

/// Worklist reachability + static operand-depth inference from F.Entry —
/// the precondition both fragment families share. On success Depth[PC]
/// holds the operand depth before each reachable PC (-1 dead) and the
/// frame/global geometry fields are set; on failure Reject names why in
/// the disassembler's vocabulary.
struct FragAnalysis {
  std::vector<int> Depth; ///< Operand depth before each PC; -1 dead.
  int MaxDepth = 0;
  uint32_t CellBytes = 0;  ///< Entry pointer-parameter cells below frame.
  uint32_t FrameDisp = 0;  ///< CurBase for an entry call (= CellBytes).
  uint64_t FrameLimit = 0; ///< FrameMem.size() during the fragment.
  uint64_t GlobalLimit = 0; ///< GlobalMem.size() during the fragment.
  bool HasRet = false;      ///< Some reachable Ret/RetV.
  const char *Reject = nullptr; ///< Why analyze() failed (null: eligible).

  /// Operand-stack effect of \p I; false when the opcode has no fragment
  /// (Op::Call, Op::Halt).
  static bool effect(const Insn &I, int &Pop, int &Push, bool &Terminal) {
    Terminal = false;
    switch (I.Code) {
    case Op::ConstD:
    case Op::ConstI:
    case Op::ConstU:
    case Op::AddrG:
    case Op::AddrF:
    case Op::LdFI:
    case Op::LdFU:
    case Op::LdFD:
    case Op::LdFP:
    case Op::LdGI:
    case Op::LdGU:
    case Op::LdGD:
    case Op::LdGP:
    case Op::LdF2AddD:
    case Op::LdF2SubD:
    case Op::LdF2MulD:
    case Op::LdF2DivD:
    case Op::LdFI2D:
    case Op::LdFU2D:
      Pop = 0;
      Push = 1;
      return true;
    case Op::Pop:
      Pop = 1;
      Push = 0;
      return true;
    case Op::Dup:
      Pop = 1;
      Push = 2;
      return true;
    case Op::Swap:
      Pop = 2;
      Push = 2;
      return true;
    case Op::Rot:
      Pop = 3;
      Push = 3;
      return true;
    case Op::LoadI:
    case Op::LoadU:
    case Op::LoadD:
    case Op::LoadP:
    case Op::NegD:
    case Op::NegI:
    case Op::NegU:
    case Op::NotI:
    case Op::NotU:
    case Op::BoolI:
    case Op::BoolD:
    case Op::BoolP:
    case Op::LogNotI:
    case Op::LogNotD:
    case Op::LogNotP:
    case Op::I2D:
    case Op::U2D:
    case Op::D2I:
    case Op::D2U:
    case Op::I2U:
    case Op::U2I:
    case Op::I2P:
    case Op::PNullCmp:
    case Op::LdFAddD:
    case Op::LdFSubD:
    case Op::LdFMulD:
    case Op::LdFDivD:
    case Op::LdGAddD:
    case Op::LdGSubD:
    case Op::LdGMulD:
    case Op::LdGDivD:
    case Op::ConstAddD:
    case Op::ConstSubD:
    case Op::ConstMulD:
    case Op::ConstDivD:
      Pop = 1;
      Push = 1;
      return true;
    case Op::StoreI:
    case Op::StoreU:
    case Op::StoreD:
    case Op::StoreP:
      Pop = 2;
      Push = I.B ? 1 : 0;
      return true;
    case Op::StFI:
    case Op::StFU:
    case Op::StFD:
    case Op::StFP:
    case Op::StGI:
    case Op::StGU:
    case Op::StGD:
    case Op::StGP:
      Pop = 1;
      Push = I.B ? 1 : 0;
      return true;
    case Op::ZeroF:
    case Op::ZeroG:
      Pop = 0;
      Push = 0;
      return true;
    case Op::AddD:
    case Op::SubD:
    case Op::MulD:
    case Op::DivD:
    case Op::AddI:
    case Op::SubI:
    case Op::MulI:
    case Op::DivI:
    case Op::RemI:
    case Op::AddU:
    case Op::SubU:
    case Op::MulU:
    case Op::DivU:
    case Op::RemU:
    case Op::ShlI:
    case Op::ShrI:
    case Op::ShlU:
    case Op::ShrU:
    case Op::And32:
    case Op::Or32:
    case Op::Xor32:
    case Op::CmpD:
    case Op::CmpI:
    case Op::CmpU:
    case Op::CmpP:
    case Op::PtrAdd:
    case Op::CondSite:
      Pop = 2;
      Push = 1;
      return true;
    case Op::Jump:
      Pop = 0;
      Push = 0;
      return true;
    case Op::JfI:
    case Op::JfD:
    case Op::JfP:
    case Op::JtI:
    case Op::JtD:
    case Op::JtP:
      Pop = 1;
      Push = 0;
      return true;
    case Op::CondSiteJf:
    case Op::CondSiteJt:
    case Op::CmpDJf:
    case Op::CmpDJt:
      Pop = 2;
      Push = 0;
      return true;
    case Op::CallB:
      if (static_cast<BuiltinId>(I.A) == BuiltinId::Scalbn || I.B == 2) {
        Pop = 2;
        Push = 1;
      } else {
        Pop = 1;
        Push = 1;
      }
      return true;
    case Op::Ret:
      Pop = 1;
      Push = 0;
      Terminal = true;
      return true;
    case Op::RetV:
    case Op::TrapOp:
      Pop = 0;
      Push = 0;
      Terminal = true;
      return true;
    case Op::Call:
    case Op::Halt:
    default:
      return false; // no fragment: fall back to the VM
    }
  }

  bool analyze(const CompiledUnit &U, const FunctionInfo &F) {
    size_t N = U.Code.size();
    if (F.Entry >= N)
      return fail("entry out of range");
    Depth.assign(N, -1);
    std::vector<uint32_t> Work;
    auto visit = [&](uint32_t PC, int D) -> bool {
      if (PC >= N)
        return false;
      if (Depth[PC] < 0) {
        Depth[PC] = D;
        Work.push_back(PC);
        return true;
      }
      return Depth[PC] == D; // join depths must agree
    };
    if (!visit(F.Entry, 0))
      return fail("inconsistent operand depth");
    while (!Work.empty()) {
      uint32_t PC = Work.back();
      Work.pop_back();
      int D = Depth[PC];
      const Insn &I = U.Code[PC];
      int Pop, Push;
      bool Terminal;
      if (!effect(I, Pop, Push, Terminal))
        return fail(I.Code == Op::Call ? "contains a call"
                                       : "unsupported opcode");
      if (D < Pop)
        return fail("operand stack underflow");
      int ND = D - Pop + Push;
      MaxDepth = std::max(MaxDepth, std::max(D, ND));
      if (I.Code == Op::Ret || I.Code == Op::RetV)
        HasRet = true;
      if (Terminal)
        continue;
      switch (I.Code) {
      case Op::Jump:
        if (!visit(I.A, ND))
          return fail("bad jump target");
        break;
      case Op::JfI:
      case Op::JfD:
      case Op::JfP:
      case Op::JtI:
      case Op::JtD:
      case Op::JtP:
      case Op::CondSiteJf:
      case Op::CondSiteJt:
      case Op::CmpDJf:
      case Op::CmpDJt:
        if (!visit(I.A, ND) || !visit(PC + 1, ND))
          return fail("bad branch target");
        break;
      default:
        if (!visit(PC + 1, ND))
          return fail("bad fallthrough");
        break;
      }
    }
    // Block costs must fit the sign-extended imm32 the charges use.
    for (uint32_t C : U.BlockCost)
      if (C > 0x7fffffffu)
        return fail("block cost overflow");
    // The return edge charges BlockCost[Thunk + 1] (the Halt block).
    if (HasRet && static_cast<size_t>(F.Thunk) + 1 >= U.BlockCost.size())
      return fail("return thunk out of range");
    // Entry-call frame geometry: pointer-parameter cells sit below the
    // frame, so CurBase == CellBytes for the whole fragment.
    for (const Type &T : F.ParamTypes)
      if (T.isPointer())
        CellBytes += 8;
    FrameDisp = CellBytes;
    FrameLimit = static_cast<uint64_t>(CellBytes) + F.FrameBytes;
    GlobalLimit = std::max<uint64_t>(U.GlobalImage.size(), U.GlobalBytes);
    uint64_t Slots = static_cast<uint64_t>(MaxDepth) * 8;
    if (Slots > 0x7fffff00ull)
      return fail("operand stack too deep");
    return true;
  }

private:
  bool fail(const char *Why) {
    Reject = Why;
    return false;
  }
};

/// Why the scalar template JIT has no fragment for \p F, or null when it
/// is scalar-JIT-able. Pure static analysis: identical on every build.
inline const char *scalarFragRejection(const CompiledUnit &U,
                                       const FunctionInfo &F) {
  FragAnalysis FA;
  FA.analyze(U, F);
  return FA.Reject;
}

/// Why the 4-lane wide JIT has no fragment for \p F given a completed
/// scalar analysis \p FA, or null when it is wide-JIT-able. The wide
/// family rejects everything the scalar emitter rejects, everything the
/// compiler's wide-safety analysis rejects, plus the few shapes that have
/// no lane-interleaved lowering.
inline const char *wideFragRejection(const CompiledUnit &U,
                                     const FunctionInfo &F,
                                     const FragAnalysis &FA) {
  if (FA.Reject)
    return FA.Reject;
  if (!F.WideSafe)
    return "not wide-safe";
  if (U.WritesGlobals)
    return "unit writes globals";
  if (F.ReturnType.isPointer())
    return "pointer return";
  for (size_t PC = 0; PC < U.Code.size(); ++PC) {
    if (FA.Depth[PC] < 0)
      continue;
    const Insn &I = U.Code[PC];
    if (I.Code != Op::ZeroF)
      continue;
    // The wide ZeroF lowering only handles whole 8-byte granules and
    // aligned 4-byte halves; Sema never emits anything else, but reject
    // rather than mis-lower if it ever does.
    uint32_t Off = FA.FrameDisp + I.A;
    uint32_t Len = I.B;
    while (Len) {
      uint32_t In = Off & 7;
      uint32_t Chunk = std::min(8u - In, Len);
      if (Chunk != 8 && !(Chunk == 4 && (In == 0 || In == 4)))
        return "unaligned local array clear";
      Off += Chunk;
      Len -= Chunk;
    }
  }
  return nullptr;
}

/// Convenience overload running the scalar analysis internally.
inline const char *wideFragRejection(const CompiledUnit &U,
                                     const FunctionInfo &F) {
  FragAnalysis FA;
  FA.analyze(U, F);
  return wideFragRejection(U, F, FA);
}

} // namespace jit
} // namespace bc
} // namespace lang
} // namespace coverme

#endif // COVERME_LANG_JITASM_H
