//===- Disasm.cpp - Bytecode disassembler ---------------------------------===//

#include "lang/Disasm.h"

#include "lang/JitAsm.h"            // fragment eligibility analysis
#include "runtime/BranchDistance.h" // cmpOpSpelling

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

using namespace coverme;
using namespace coverme::lang;
using namespace coverme::lang::bc;

const char *bc::opName(Op O) {
  static const char *const Names[] = {
#define COVERME_VM_OP_NAME(Name) #Name,
      COVERME_VM_OPCODES(COVERME_VM_OP_NAME)
#undef COVERME_VM_OP_NAME
  };
  return Names[static_cast<size_t>(O)];
}

namespace {

/// Mirrors the Vm's builtin table; indexed by BuiltinId.
const char *builtinName(BuiltinId Id) {
  static const char *const Names[] = {
      "fabs",  "sqrt",  "sin",   "cos",   "tan",   "asin",     "acos",
      "atan",  "exp",   "log",   "log10", "log1p", "expm1",    "floor",
      "ceil",  "rint",  "trunc", "cbrt",  "sinh",  "cosh",     "tanh",
      "j0",    "j1",    "y0",    "y1",    "pow",   "fmod",     "atan2",
      "hypot", "copysign", "fmin", "fmax", "scalbn",
  };
  return Names[static_cast<size_t>(Id)];
}

#if defined(__GNUC__)
void appendf(std::string &Out, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));
#endif

void appendf(std::string &Out, const char *Fmt, ...) {
  char Buf[256];
  va_list Ap;
  va_start(Ap, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  Out += Buf;
}

/// Operand rendering classes shared by several opcodes.
void renderPool(const CompiledUnit &U, uint32_t Idx, std::string &Out) {
  appendf(Out, "pool[%" PRIu32 "]=%.17g", Idx, U.DoublePool[Idx]);
}

} // namespace

std::string bc::renderInsn(const CompiledUnit &U, uint32_t PC) {
  const Insn &In = U.Code[PC];
  std::string Out;
  appendf(Out, "%-11s", opName(In.Code));
  switch (In.Code) {
  case Op::ConstD:
  case Op::ConstAddD:
  case Op::ConstSubD:
  case Op::ConstMulD:
  case Op::ConstDivD:
    Out += ' ';
    renderPool(U, In.A, Out);
    break;
  case Op::ConstI:
    appendf(Out, " %" PRId32, static_cast<int32_t>(In.A));
    break;
  case Op::ConstU:
    appendf(Out, " %" PRIu32 "u", In.A);
    break;
  case Op::AddrF:
  case Op::LdFI:
  case Op::LdFU:
  case Op::LdFD:
  case Op::LdFP:
  case Op::LdFI2D:
  case Op::LdFU2D:
  case Op::LdFAddD:
  case Op::LdFSubD:
  case Op::LdFMulD:
  case Op::LdFDivD:
    appendf(Out, " f+%" PRIu32, In.A);
    break;
  case Op::LdF2AddD:
  case Op::LdF2SubD:
  case Op::LdF2MulD:
  case Op::LdF2DivD:
    appendf(Out, " f+%" PRIu32 ", f+%" PRIu32, In.A, In.B);
    break;
  case Op::StFI:
  case Op::StFU:
  case Op::StFD:
  case Op::StFP:
    appendf(Out, " f+%" PRIu32 "%s", In.A, In.B ? ", keep" : "");
    break;
  case Op::AddrG:
  case Op::LdGI:
  case Op::LdGU:
  case Op::LdGD:
  case Op::LdGP:
  case Op::LdGAddD:
  case Op::LdGSubD:
  case Op::LdGMulD:
  case Op::LdGDivD:
    appendf(Out, " g+%" PRIu32, In.A);
    break;
  case Op::StGI:
  case Op::StGU:
  case Op::StGD:
  case Op::StGP:
    appendf(Out, " g+%" PRIu32 "%s", In.A, In.B ? ", keep" : "");
    break;
  case Op::StoreI:
  case Op::StoreU:
  case Op::StoreD:
  case Op::StoreP:
    if (In.B)
      Out += " keep";
    break;
  case Op::ZeroF:
    appendf(Out, " f+%" PRIu32 ", %" PRIu32 " bytes", In.A, In.B);
    break;
  case Op::ZeroG:
    appendf(Out, " g+%" PRIu32 ", %" PRIu32 " bytes", In.A, In.B);
    break;
  case Op::CmpD:
  case Op::CmpI:
  case Op::CmpU:
  case Op::CmpP:
    appendf(Out, " %s", cmpOpSpelling(static_cast<CmpOp>(In.A)));
    break;
  case Op::PNullCmp:
    appendf(Out, " %s", In.A ? "==null" : "!=null");
    break;
  case Op::PtrAdd:
    appendf(Out, " %s%" PRIu32 " bytes/elem", In.B ? "-" : "+", In.A);
    break;
  case Op::Jump:
  case Op::JfI:
  case Op::JfD:
  case Op::JfP:
  case Op::JtI:
  case Op::JtD:
  case Op::JtP:
    appendf(Out, " -> %" PRIu32, In.A);
    break;
  case Op::CondSite:
    appendf(Out, " site %" PRIu32 " %s", In.A,
            cmpOpSpelling(static_cast<CmpOp>(In.B)));
    break;
  case Op::CondSiteJf:
  case Op::CondSiteJt:
    appendf(Out, " site %" PRIu32 " %s -> %" PRIu32, In.B >> 3,
            cmpOpSpelling(static_cast<CmpOp>(In.B & 7u)), In.A);
    break;
  case Op::CmpDJf:
  case Op::CmpDJt:
    appendf(Out, " %s -> %" PRIu32, cmpOpSpelling(static_cast<CmpOp>(In.B)),
            In.A);
    break;
  case Op::Call:
    appendf(Out, " %s", U.Functions[In.A].Name.c_str());
    break;
  case Op::CallB:
    appendf(Out, " %s/%" PRIu32, builtinName(static_cast<BuiltinId>(In.A)),
            In.B);
    break;
  case Op::TrapOp:
    appendf(Out, " \"%s\"", U.TrapMessages[In.A].c_str());
    break;
  default:
    break; // pure stack operators carry no operands
  }
  if (In.Cost != 1)
    appendf(Out, "  ; cost %u", In.Cost);
  // Trim the padding of operand-less mnemonics.
  while (!Out.empty() && Out.back() == ' ')
    Out.pop_back();
  return Out;
}

std::string bc::disassembleFunction(const CompiledUnit &U, unsigned FnIndex) {
  const FunctionInfo &F = U.Functions[FnIndex];
  std::string Out;
  appendf(Out, "%s(%zu params): frame %" PRIu32 " bytes, entry %" PRIu32
               ", thunk %" PRIu32 "%s\n",
          F.Name.c_str(), F.ParamTypes.size(), F.FrameBytes, F.Entry,
          F.Thunk, F.WideSafe ? ", wide-safe" : "");
  // Batch-backend eligibility. Pure static analysis (JitAsm.h), so the
  // annotation — and the goldens pinning it — are identical on every
  // build, including ones compiled without the JIT or the SIMD lane.
  jit::FragAnalysis FA;
  FA.analyze(U, F);
  const char *WideWhy = jit::wideFragRejection(U, F, FA);
  if (FA.Reject)
    appendf(Out, "  batch: scalar fragment rejected (%s)", FA.Reject);
  else
    Out += "  batch: scalar fragment ok";
  if (WideWhy)
    appendf(Out, ", wide fragment rejected (%s)\n", WideWhy);
  else
    Out += ", wide fragment ok\n";
  for (uint32_t PC = F.Entry; PC < F.Thunk + 2 && PC < U.Code.size(); ++PC) {
    appendf(Out, "%5" PRIu32 "  ", PC);
    Out += renderInsn(U, PC);
    Out += '\n';
  }
  return Out;
}

std::string bc::disassemble(const CompiledUnit &U) {
  std::string Out;
  appendf(Out,
          "unit: %zu insns, %zu functions, pool %" PRIu32 " slots (%" PRIu32
          " literal requests), %" PRIu32 " sites\n",
          U.Code.size(), U.Functions.size(), U.Stats.PoolSize,
          U.Stats.PoolRequests, static_cast<uint32_t>(U.NumSites));
  if (U.Stats.FusionEnabled)
    appendf(Out,
            "fusion: on, %" PRIu32 " superinsns (%" PRIu32 " -> %" PRIu32
            " insns)\n",
            U.Stats.Superinsns, U.Stats.InsnsBeforeFusion,
            U.Stats.InsnsAfterFusion);
  else
    Out += "fusion: off\n";
  appendf(Out,
          "wide: %" PRIu32 " of %zu functions safe for the SIMD batch lane\n",
          U.Stats.WideSafeFunctions, U.Functions.size());
  unsigned ScalarOk = 0, WideOk = 0;
  for (const FunctionInfo &F : U.Functions) {
    jit::FragAnalysis FA;
    FA.analyze(U, F);
    if (!FA.Reject)
      ++ScalarOk;
    if (!jit::wideFragRejection(U, F, FA))
      ++WideOk;
  }
  appendf(Out,
          "jit: %u of %zu functions scalar-fragment-able, %u wide-fragment-"
          "able\n",
          ScalarOk, U.Functions.size(), WideOk);
  for (unsigned I = 0; I < U.Functions.size(); ++I) {
    Out += '\n';
    Out += disassembleFunction(U, I);
  }
  Out += "\nglobal-init:\n";
  for (uint32_t PC = U.GlobalInitEntry; PC < U.Code.size(); ++PC) {
    appendf(Out, "%5" PRIu32 "  ", PC);
    Out += renderInsn(U, PC);
    Out += '\n';
  }
  return Out;
}
