//===- Sema.cpp - Semantic analysis for the mini-C subset -----------------===//

#include "lang/Sema.h"

#include <algorithm>
#include <map>

using namespace coverme;
using namespace coverme::lang;

unsigned lang::builtinArity(const std::string &Name) {
  static const std::map<std::string, unsigned> Builtins = {
      {"fabs", 1},     {"sqrt", 1},   {"sin", 1},    {"cos", 1},
      {"tan", 1},      {"asin", 1},   {"acos", 1},   {"atan", 1},
      {"exp", 1},      {"log", 1},    {"log10", 1},  {"log1p", 1},
      {"expm1", 1},    {"floor", 1},  {"ceil", 1},   {"rint", 1},
      {"trunc", 1},    {"cbrt", 1},   {"sinh", 1},   {"cosh", 1},
      {"tanh", 1},     {"j0", 1},     {"j1", 1},     {"y0", 1},
      {"y1", 1},       {"pow", 2},    {"fmod", 2},   {"atan2", 2},
      {"hypot", 2},    {"copysign", 2}, {"fmin", 2}, {"fmax", 2},
      {"scalbn", 2},   {"ldexp", 2},
  };
  auto It = Builtins.find(Name);
  return It == Builtins.end() ? 0 : It->second;
}

namespace {

/// Usual arithmetic conversions over the three scalar types.
Type usualArithmetic(Type L, Type R) {
  if (L.Base == BaseType::Double || R.Base == BaseType::Double)
    return Type(BaseType::Double);
  if (L.Base == BaseType::UInt || R.Base == BaseType::UInt)
    return Type(BaseType::UInt);
  return Type(BaseType::Int);
}

/// Lexically scoped symbol table with frame-offset allocation.
class ScopeStack {
public:
  void push() { Scopes.emplace_back(); }
  void pop() { Scopes.pop_back(); }

  void declare(VarDecl *D) { Scopes.back()[D->Name] = D; }

  const VarDecl *lookup(const std::string &Name) const {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto Found = It->find(Name);
      if (Found != It->end())
        return Found->second;
    }
    return nullptr;
  }

private:
  std::vector<std::map<std::string, VarDecl *>> Scopes;
};

/// The analysis pass. One instance per translation unit.
class Sema {
public:
  Sema(TranslationUnit &TU, std::vector<Diagnostic> &Diags)
      : TU(TU), Diags(Diags) {}

  bool run();

private:
  TranslationUnit &TU;
  std::vector<Diagnostic> &Diags;
  ScopeStack Scopes;
  unsigned FrameTop = 0;    ///< Next free frame byte in the current function.
  unsigned NextSite = 0;    ///< Next conditional site id (unit-wide).
  FunctionDecl *CurrentFn = nullptr;

  void error(unsigned Line, const std::string &Message) {
    Diags.push_back({Line, Message});
  }

  /// Allocates 8-aligned storage for \p D in the current frame.
  void allocateLocal(VarDecl &D) {
    FrameTop = (FrameTop + 7u) & ~7u;
    D.ByteOffset = FrameTop;
    FrameTop += std::max(8u, D.storageBytes());
  }

  bool isLvalue(const Expr &E) const {
    if (E.Kind == ExprKind::VarRef)
      return !exprCast<VarRefExpr>(E).Decl ||
             !exprCast<VarRefExpr>(E).Decl->isArray();
    if (E.Kind == ExprKind::Index)
      return true;
    if (E.Kind == ExprKind::Unary)
      return exprCast<UnaryExpr>(E).Op == UnaryOp::Deref;
    return false;
  }

  bool checkExpr(Expr &E);
  bool checkStmt(Stmt &S);
  bool checkCondition(ExprPtr &Cond, uint32_t &Site);
  bool checkFunction(FunctionDecl &F);
  bool checkGlobals();
};

bool Sema::checkExpr(Expr &E) {
  switch (E.Kind) {
  case ExprKind::IntLiteral: {
    auto &Lit = static_cast<IntLiteralExpr &>(E);
    E.Ty = Type(Lit.IsUnsigned ? BaseType::UInt : BaseType::Int);
    return true;
  }
  case ExprKind::DoubleLiteral:
    E.Ty = Type(BaseType::Double);
    return true;

  case ExprKind::VarRef: {
    auto &Ref = static_cast<VarRefExpr &>(E);
    Ref.Decl = Scopes.lookup(Ref.Name);
    if (!Ref.Decl) {
      error(E.Line, "use of undeclared identifier '" + Ref.Name + "'");
      return false;
    }
    // Arrays decay to a pointer to their first element.
    E.Ty = Ref.Decl->isArray() ? Ref.Decl->DeclType.pointerTo()
                               : Ref.Decl->DeclType;
    return true;
  }

  case ExprKind::Unary: {
    auto &U = static_cast<UnaryExpr &>(E);
    if (!checkExpr(*U.Operand))
      return false;
    Type OpTy = U.Operand->Ty;
    switch (U.Op) {
    case UnaryOp::Neg:
      if (!OpTy.isArithmetic()) {
        error(E.Line, "unary '-' requires an arithmetic operand");
        return false;
      }
      E.Ty = OpTy;
      return true;
    case UnaryOp::LogNot:
      E.Ty = Type(BaseType::Int);
      return true;
    case UnaryOp::BitNot:
      if (!OpTy.isInteger()) {
        error(E.Line, "'~' requires an integer operand");
        return false;
      }
      E.Ty = OpTy;
      return true;
    case UnaryOp::Deref:
      if (!OpTy.isPointer()) {
        error(E.Line, "cannot dereference non-pointer type " +
                          typeName(OpTy));
        return false;
      }
      E.Ty = OpTy.pointee();
      return true;
    case UnaryOp::AddrOf:
      if (!isLvalue(*U.Operand)) {
        error(E.Line, "cannot take the address of an rvalue");
        return false;
      }
      E.Ty = OpTy.pointerTo();
      return true;
    case UnaryOp::PreInc:
    case UnaryOp::PreDec:
      if (!isLvalue(*U.Operand)) {
        error(E.Line, "increment target must be an lvalue");
        return false;
      }
      E.Ty = OpTy;
      return true;
    }
    assert(false && "unknown UnaryOp");
    return false;
  }

  case ExprKind::Postfix: {
    auto &P = static_cast<PostfixExpr &>(E);
    if (!checkExpr(*P.Operand))
      return false;
    if (!isLvalue(*P.Operand)) {
      error(E.Line, "increment target must be an lvalue");
      return false;
    }
    E.Ty = P.Operand->Ty;
    return true;
  }

  case ExprKind::Cast: {
    auto &C = static_cast<CastExpr &>(E);
    if (!checkExpr(*C.Operand))
      return false;
    if (C.Target.isPointer() && C.Operand->Ty.isDouble()) {
      error(E.Line, "cannot cast a double rvalue to a pointer");
      return false;
    }
    E.Ty = C.Target;
    return true;
  }

  case ExprKind::Binary: {
    auto &B = static_cast<BinaryExpr &>(E);
    if (!checkExpr(*B.Lhs) || !checkExpr(*B.Rhs))
      return false;
    Type L = B.Lhs->Ty, R = B.Rhs->Ty;
    switch (B.Op) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
      // Pointer arithmetic: ptr +- int, and int + ptr.
      if (L.isPointer() && R.isInteger()) {
        E.Ty = L;
        return true;
      }
      if (B.Op == BinaryOp::Add && L.isInteger() && R.isPointer()) {
        E.Ty = R;
        return true;
      }
      [[fallthrough]];
    case BinaryOp::Mul:
    case BinaryOp::Div:
      if (!L.isArithmetic() || !R.isArithmetic()) {
        error(E.Line, "arithmetic operator on non-arithmetic operands");
        return false;
      }
      E.Ty = usualArithmetic(L, R);
      return true;
    case BinaryOp::Rem:
    case BinaryOp::BitAnd:
    case BinaryOp::BitOr:
    case BinaryOp::BitXor:
      if (!L.isInteger() || !R.isInteger()) {
        error(E.Line, "integer operator on non-integer operands");
        return false;
      }
      E.Ty = usualArithmetic(L, R);
      return true;
    case BinaryOp::Shl:
    case BinaryOp::Shr:
      if (!L.isInteger() || !R.isInteger()) {
        error(E.Line, "shift on non-integer operands");
        return false;
      }
      E.Ty = L; // shifts keep the left operand's type
      return true;
    case BinaryOp::LT:
    case BinaryOp::LE:
    case BinaryOp::GT:
    case BinaryOp::GE:
    case BinaryOp::EQ:
    case BinaryOp::NE: {
      // Pointer equality against an integer (the null-pointer-constant
      // idiom `p != 0`) is allowed for ==/!= only.
      bool NullCompare =
          (B.Op == BinaryOp::EQ || B.Op == BinaryOp::NE) &&
          ((L.isPointer() && R.isInteger()) ||
           (L.isInteger() && R.isPointer()));
      if (!(L.isArithmetic() && R.isArithmetic()) &&
          !(L.isPointer() && R.isPointer()) && !NullCompare) {
        error(E.Line, "invalid comparison operand types");
        return false;
      }
      E.Ty = Type(BaseType::Int);
      return true;
    }
    case BinaryOp::LogAnd:
    case BinaryOp::LogOr:
      E.Ty = Type(BaseType::Int);
      return true;
    case BinaryOp::Comma:
      E.Ty = R;
      return true;
    }
    assert(false && "unknown BinaryOp");
    return false;
  }

  case ExprKind::Ternary: {
    auto &T = static_cast<TernaryExpr &>(E);
    if (!checkExpr(*T.Cond) || !checkExpr(*T.TrueExpr) ||
        !checkExpr(*T.FalseExpr))
      return false;
    Type L = T.TrueExpr->Ty, R = T.FalseExpr->Ty;
    if (L.isArithmetic() && R.isArithmetic()) {
      E.Ty = usualArithmetic(L, R);
      return true;
    }
    if (L == R) {
      E.Ty = L;
      return true;
    }
    error(E.Line, "incompatible ternary branch types");
    return false;
  }

  case ExprKind::Assign: {
    auto &A = static_cast<AssignExpr &>(E);
    if (!checkExpr(*A.Lhs) || !checkExpr(*A.Rhs))
      return false;
    if (!isLvalue(*A.Lhs)) {
      error(E.Line, "assignment target must be an lvalue");
      return false;
    }
    if (A.Op != AssignOp::Assign) {
      bool IntOnly = A.Op == AssignOp::Rem || A.Op == AssignOp::Shl ||
                     A.Op == AssignOp::Shr || A.Op == AssignOp::And ||
                     A.Op == AssignOp::Or || A.Op == AssignOp::Xor;
      if (IntOnly && !A.Lhs->Ty.isInteger()) {
        error(E.Line, "integer compound assignment on non-integer lvalue");
        return false;
      }
      if (!A.Lhs->Ty.isArithmetic()) {
        error(E.Line, "compound assignment on non-arithmetic lvalue");
        return false;
      }
    } else if (A.Lhs->Ty.isPointer() != A.Rhs->Ty.isPointer() &&
               !A.Rhs->Ty.isArithmetic()) {
      error(E.Line, "incompatible assignment types");
      return false;
    }
    E.Ty = A.Lhs->Ty;
    return true;
  }

  case ExprKind::Call: {
    auto &Call = static_cast<CallExpr &>(E);
    for (auto &Arg : Call.Args)
      if (!checkExpr(*Arg))
        return false;
    Call.Callee = TU.findFunction(Call.Name);
    if (Call.Callee) {
      if (Call.Args.size() != Call.Callee->Params.size()) {
        error(E.Line, "call to '" + Call.Name + "' with " +
                          std::to_string(Call.Args.size()) +
                          " arguments; expected " +
                          std::to_string(Call.Callee->Params.size()));
        return false;
      }
      E.Ty = Call.Callee->ReturnType;
      return true;
    }
    unsigned Arity = builtinArity(Call.Name);
    if (Arity == 0) {
      error(E.Line, "call to unknown function '" + Call.Name + "'");
      return false;
    }
    if (Call.Args.size() != Arity) {
      error(E.Line, "builtin '" + Call.Name + "' takes " +
                        std::to_string(Arity) + " arguments");
      return false;
    }
    E.Ty = Type(BaseType::Double);
    return true;
  }

  case ExprKind::Index: {
    auto &Idx = static_cast<IndexExpr &>(E);
    if (!checkExpr(*Idx.Base) || !checkExpr(*Idx.Index))
      return false;
    if (!Idx.Base->Ty.isPointer()) {
      error(E.Line, "subscripted value is not a pointer or array");
      return false;
    }
    if (!Idx.Index->Ty.isInteger()) {
      error(E.Line, "array subscript must be an integer");
      return false;
    }
    E.Ty = Idx.Base->Ty.pointee();
    return true;
  }
  }
  assert(false && "unknown ExprKind");
  return false;
}

/// Conditions that are exactly one arithmetic comparison become sites.
bool Sema::checkCondition(ExprPtr &Cond, uint32_t &Site) {
  if (!checkExpr(*Cond))
    return false;
  Site = kNoSite;
  if (Cond->Kind != ExprKind::Binary)
    return true;
  auto &B = static_cast<BinaryExpr &>(*Cond);
  if (!isComparisonOp(B.Op))
    return true;
  if (!B.Lhs->Ty.isArithmetic() || !B.Rhs->Ty.isArithmetic())
    return true; // pointer comparisons are left uninstrumented (Sect. 5.3)
  Site = NextSite++;
  CurrentFn->Sites.push_back(Site);
  return true;
}

bool Sema::checkStmt(Stmt &S) {
  switch (S.Kind) {
  case StmtKind::Expr:
    return checkExpr(*static_cast<ExprStmt &>(S).E);

  case StmtKind::Decl: {
    auto &DS = static_cast<DeclStmt &>(S);
    for (auto &D : DS.Decls) {
      if (D->DeclType.isVoid()) {
        error(D->Line, "variable '" + D->Name + "' declared void");
        return false;
      }
      if (D->Init && !checkExpr(*D->Init))
        return false;
      for (auto &Elem : D->InitList)
        if (!checkExpr(*Elem))
          return false;
      if (!D->InitList.empty() && !D->isArray()) {
        error(D->Line, "brace initializer on a scalar");
        return false;
      }
      if (D->isArray() && D->InitList.size() > D->ArraySize) {
        error(D->Line, "too many initializers for array '" + D->Name + "'");
        return false;
      }
      allocateLocal(*D);
      Scopes.declare(D.get());
    }
    return true;
  }

  case StmtKind::Block: {
    auto &B = static_cast<BlockStmt &>(S);
    Scopes.push();
    bool Ok = true;
    for (auto &Child : B.Body)
      Ok &= checkStmt(*Child);
    Scopes.pop();
    return Ok;
  }

  case StmtKind::If: {
    auto &If = static_cast<IfStmt &>(S);
    if (!checkCondition(If.Cond, If.Site))
      return false;
    bool Ok = checkStmt(*If.Then);
    if (If.Else)
      Ok &= checkStmt(*If.Else);
    return Ok;
  }

  case StmtKind::While: {
    auto &W = static_cast<WhileStmt &>(S);
    if (!checkCondition(W.Cond, W.Site))
      return false;
    return checkStmt(*W.Body);
  }

  case StmtKind::DoWhile: {
    auto &D = static_cast<DoWhileStmt &>(S);
    bool Ok = checkStmt(*D.Body);
    return checkCondition(D.Cond, D.Site) && Ok;
  }

  case StmtKind::For: {
    auto &F = static_cast<ForStmt &>(S);
    Scopes.push(); // for-init declarations scope over the loop
    bool Ok = true;
    if (F.Init)
      Ok &= checkStmt(*F.Init);
    if (F.Cond)
      Ok &= checkCondition(F.Cond, F.Site);
    if (F.Step)
      Ok &= checkExpr(*F.Step);
    Ok &= checkStmt(*F.Body);
    Scopes.pop();
    return Ok;
  }

  case StmtKind::Return: {
    auto &R = static_cast<ReturnStmt &>(S);
    if (R.Value && !checkExpr(*R.Value))
      return false;
    if (R.Value && CurrentFn->ReturnType.isVoid()) {
      error(S.Line, "void function returns a value");
      return false;
    }
    if (!R.Value && !CurrentFn->ReturnType.isVoid()) {
      error(S.Line, "non-void function returns no value");
      return false;
    }
    return true;
  }

  case StmtKind::Break:
  case StmtKind::Continue:
  case StmtKind::Empty:
    return true;
  }
  assert(false && "unknown StmtKind");
  return false;
}

bool Sema::checkFunction(FunctionDecl &F) {
  CurrentFn = &F;
  FrameTop = 0;
  Scopes.push();
  bool Ok = true;
  for (auto &P : F.Params) {
    if (P->DeclType.isVoid()) {
      error(P->Line, "parameter '" + P->Name + "' declared void");
      Ok = false;
      continue;
    }
    allocateLocal(*P);
    Scopes.declare(P.get());
  }
  if (Ok)
    Ok = checkStmt(*F.Body);
  Scopes.pop();
  F.FrameBytes = (FrameTop + 7u) & ~7u;
  CurrentFn = nullptr;
  return Ok;
}

bool Sema::checkGlobals() {
  unsigned Offset = 0;
  bool Ok = true;
  for (auto &G : TU.Globals) {
    if (G->DeclType.isVoid()) {
      error(G->Line, "global '" + G->Name + "' declared void");
      Ok = false;
      continue;
    }
    if (G->Init)
      Ok &= checkExpr(*G->Init);
    for (auto &Elem : G->InitList)
      Ok &= checkExpr(*Elem);
    if (!G->InitList.empty() && !G->isArray()) {
      error(G->Line, "brace initializer on a scalar global");
      Ok = false;
    }
    if (G->isArray() && G->InitList.size() > G->ArraySize) {
      error(G->Line, "too many initializers for array '" + G->Name + "'");
      Ok = false;
    }
    Offset = (Offset + 7u) & ~7u;
    G->ByteOffset = Offset;
    Offset += std::max(8u, G->storageBytes());
    Scopes.declare(G.get());
  }
  TU.GlobalBytes = (Offset + 7u) & ~7u;
  return Ok;
}

bool Sema::run() {
  // Duplicate-definition checks first; later passes assume unique names.
  bool Ok = true;
  for (size_t I = 0; I < TU.Functions.size(); ++I)
    for (size_t J = I + 1; J < TU.Functions.size(); ++J)
      if (TU.Functions[I]->Name == TU.Functions[J]->Name) {
        error(TU.Functions[J]->Line,
              "redefinition of function '" + TU.Functions[J]->Name + "'");
        Ok = false;
      }

  Scopes.push(); // file scope
  Ok &= checkGlobals();
  for (auto &F : TU.Functions)
    Ok &= checkFunction(*F);
  Scopes.pop();
  TU.NumSites = NextSite;
  return Ok;
}

} // namespace

bool lang::analyze(TranslationUnit &TU, std::vector<Diagnostic> &Diags) {
  return Sema(TU, Diags).run();
}
