//===- SourceSuite.cpp - Fdlibm 5.3 sources for the interpreter pipeline --===//

#include "lang/SourceSuite.h"

using namespace coverme;
using namespace coverme::lang;

namespace {

/// s_tanh.c — the paper's Fig. 1 program.
const char *TanhSource = R"(
/* @(#)s_tanh.c 1.3 95/01/18 -- Fdlibm 5.3 */
static const double one = 1.0, two = 2.0, tiny = 1.0e-300;

double tanh(double x)
{
    double t, z;
    int jx, ix;

    jx = *(1 + (int *)&x);              /* high word of x */
    ix = jx & 0x7fffffff;

    if (ix >= 0x7ff00000) {             /* x is INF or NaN */
        if (jx >= 0)
            return one / x + one;       /* tanh(+-inf)=+-1 */
        else
            return one / x - one;       /* tanh(NaN) = NaN */
    }

    if (ix < 0x40360000) {              /* |x| < 22 */
        if (ix < 0x3c800000)            /* |x| < 2**-55 */
            return x * (one + x);
        if (ix >= 0x3ff00000) {         /* |x| >= 1 */
            t = expm1(two * fabs(x));
            z = one - two / (t + two);
        } else {
            t = expm1(-two * fabs(x));
            z = -t / (t + two);
        }
    } else {                            /* |x| > 22: saturated */
        z = one - tiny;
    }
    if (jx >= 0) return z;
    else return -z;
}
)";

/// s_cbrt.c — Kahan's cube root: rough estimate via exponent division,
/// one rational refinement, one Newton step, all on raw words.
const char *CbrtSource = R"(
/* @(#)s_cbrt.c 1.3 95/01/18 -- Fdlibm 5.3 */
static const unsigned B1 = 715094163, B2 = 696219795;
static const double C =  5.42857142857142815906e-01,
                    D = -7.05306122448979611050e-01,
                    E =  1.41428571428571436819e+00,
                    F =  1.60714285714285720630e+00,
                    G =  3.57142857142857150787e-01;

double cbrt(double x)
{
    int hx;
    double r, s, t = 0.0, w;
    unsigned sign;

    hx = *(1 + (int *)&x);
    sign = hx & 0x80000000;             /* sign = sign(x) */
    hx = hx ^ sign;
    if (hx >= 0x7ff00000) return x + x; /* cbrt(NaN,INF) is itself */
    if ((hx | *(int *)&x) == 0)
        return x;                       /* cbrt(0) is itself */

    *(1 + (int *)&x) = hx;              /* x <- |x| */
    /* rough cbrt to 5 bits */
    if (hx < 0x00100000) {              /* subnormal number */
        *(1 + (int *)&t) = 0x43500000;  /* set t = 2**54 */
        t = t * x;
        *(1 + (int *)&t) = *(1 + (int *)&t) / 3 + B2;
    } else {
        *(1 + (int *)&t) = hx / 3 + B1;
    }

    /* new cbrt to 23 bits, may be implemented in single precision */
    r = t * t / x;
    s = C + r * t;
    t = t * (G + F / (s + E + D / s));

    /* chop to 20 bits and make it larger than cbrt(x) */
    *(int *)&t = 0;
    *(1 + (int *)&t) = *(1 + (int *)&t) + 0x00000001;

    /* one step newton iteration to 53 bits with error less than 0.667 ulps */
    s = t * t;                          /* t*t is exact */
    r = x / s;
    w = t + t;
    r = (r - t) / (w + r);              /* r-s is exact */
    t = t + t * r;

    /* retore the sign bit */
    *(1 + (int *)&t) = *(1 + (int *)&t) | sign;
    return t;
}
)";

/// s_asinh.c.
const char *AsinhSource = R"(
/* @(#)s_asinh.c 1.3 95/01/18 -- Fdlibm 5.3 */
static const double one  = 1.00000000000000000000e+00,
                    ln2  = 6.93147180559945286227e-01,
                    huge = 1.00000000000000000000e+300;

double asinh(double x)
{
    double t, w;
    int hx, ix;
    hx = *(1 + (int *)&x);
    ix = hx & 0x7fffffff;
    if (ix >= 0x7ff00000) return x + x; /* x is inf or NaN */
    if (ix < 0x3e300000) {              /* |x| < 2**-28 */
        if (huge + x > one) return x;   /* return x with inexact */
    }
    if (ix > 0x41b00000) {              /* |x| > 2**28 */
        w = log(fabs(x)) + ln2;
    } else if (ix > 0x40000000) {       /* 2**28 > |x| > 2.0 */
        t = fabs(x);
        w = log(2.0 * t + one / (sqrt(x * x + one) + t));
    } else {                            /* 2.0 > |x| > 2**-28 */
        t = x * x;
        w = log1p(fabs(x) + t / (one + sqrt(one + t)));
    }
    if (hx > 0) return w;
    else return -w;
}
)";

/// e_acosh.c.
const char *AcoshSource = R"(
/* @(#)e_acosh.c 1.3 95/01/18 -- Fdlibm 5.3 */
static const double one = 1.0,
                    ln2 = 6.93147180559945286227e-01;

double acosh(double x)
{
    double t;
    int hx;
    hx = *(1 + (int *)&x);
    if (hx < 0x3ff00000) {              /* x < 1 */
        return (x - x) / (x - x);
    } else if (hx >= 0x41b00000) {      /* x > 2**28 */
        if (hx >= 0x7ff00000) {         /* x is inf of NaN */
            return x + x;
        } else
            return log(x) + ln2;        /* acosh(huge)=log(2x) */
    } else if (((hx - 0x3ff00000) | *(int *)&x) == 0) {
        return 0.0;                     /* acosh(1) = 0 */
    } else if (hx > 0x40000000) {       /* 2**28 > x > 2 */
        t = x * x;
        return log(2.0 * x - one / (x + sqrt(t - one)));
    } else {                            /* 1 < x < 2 */
        t = x - one;
        return log1p(t + sqrt(2.0 * t + t * t));
    }
}
)";

/// e_atanh.c.
const char *AtanhSource = R"(
/* @(#)e_atanh.c 1.3 95/01/18 -- Fdlibm 5.3 */
static const double one = 1.0, huge = 1.0e+300;
static const double zero = 0.0;

double atanh(double x)
{
    double t;
    int hx, ix;
    unsigned lx;
    hx = *(1 + (int *)&x);
    lx = *(unsigned *)&x;
    ix = hx & 0x7fffffff;
    if ((ix | ((lx | (-lx)) >> 31)) > 0x3ff00000)
        return (x - x) / (x - x);       /* |x| > 1 */
    if (ix == 0x3ff00000)
        return x / zero;                /* atanh(+-1) = +-inf */
    if (ix < 0x3e300000 && (huge + x) > zero)
        return x;                       /* x < 2**-28 */
    *(1 + (int *)&x) = ix;              /* x <- |x| */
    if (ix < 0x3fe00000) {              /* x < 0.5 */
        t = x + x;
        t = 0.5 * log1p(t + t * x / (one - x));
    } else
        t = 0.5 * log1p((x + x) / (one - x));
    if (hx >= 0) return t;
    else return -t;
}
)";

/// e_cosh.c.
const char *CoshSource = R"(
/* @(#)e_cosh.c 1.3 95/01/18 -- Fdlibm 5.3 */
static const double one = 1.0, half = 0.5, huge = 1.0e300;

double cosh(double x)
{
    double t, w;
    int ix;
    unsigned lx;

    ix = *(1 + (int *)&x);
    ix = ix & 0x7fffffff;

    if (ix >= 0x7ff00000) return x * x; /* x is INF or NaN */

    /* |x| in [0, 0.5*ln2]: cosh(x) = 1 + expm1(|x|)^2 / (2*exp(|x|)) */
    if (ix < 0x3fd62e43) {
        t = expm1(fabs(x));
        w = one + t;
        if (ix < 0x3c800000) return w;  /* cosh(tiny) = 1 */
        return one + (t * t) / (w + w);
    }

    /* |x| in [0.5*ln2, 22]: cosh(x) = (exp(|x|) + 1/exp(|x|)) / 2 */
    if (ix < 0x40360000) {
        t = exp(fabs(x));
        return half * t + half / t;
    }

    /* |x| in [22, log(maxdouble)]: cosh(x) = exp(|x|)/2 */
    if (ix < 0x40862e42) return half * exp(fabs(x));

    /* |x| in [log(maxdouble), overflowthresold] */
    lx = *(unsigned *)&x;
    if (ix < 0x408633ce ||
        (ix == 0x408633ce && lx <= (unsigned)0x8fb9f87d)) {
        w = exp(half * fabs(x));
        t = half * w;
        return t * w;
    }

    return huge * huge;                 /* overflow */
}
)";

/// s_logb.c.
const char *LogbSource = R"(
/* @(#)s_logb.c 1.3 95/01/18 -- Fdlibm 5.3 */
double logb(double x)
{
    int lx, ix;
    ix = (*(1 + (int *)&x)) & 0x7fffffff;   /* high |x| */
    lx = *(int *)&x;                        /* low x */
    if ((ix | lx) == 0) return -1.0 / fabs(x);
    if (ix >= 0x7ff00000) return x * x;
    if ((ix >>= 20) == 0)                   /* IEEE 754 logb */
        return -1022.0;
    else
        return (double)(ix - 1023);
}
)";

/// s_ilogb.c — the subnormal bit-sliding loops.
const char *IlogbSource = R"(
/* @(#)s_ilogb.c 1.3 95/01/18 -- Fdlibm 5.3 */
int ilogb(double x)
{
    int hx, lx, ix;

    hx = (*(1 + (int *)&x)) & 0x7fffffff;   /* high word of x */
    if (hx < 0x00100000) {
        lx = *(int *)&x;
        if ((hx | lx) == 0)
            return 0x80000001;              /* ilogb(0) = 0x80000001 */
        else if (hx == 0) {                 /* subnormal x */
            for (ix = -1043; lx > 0; lx <<= 1) ix -= 1;
        } else {
            for (ix = -1022, hx <<= 11; hx > 0; hx <<= 1) ix -= 1;
        }
        return ix;
    } else if (hx < 0x7ff00000)
        return (hx >> 20) - 1023;
    else
        return 0x7fffffff;
}
)";

/// s_modf.c — the double* output parameter exercises pointer lowering.
const char *ModfSource = R"(
/* @(#)s_modf.c 1.3 95/01/18 -- Fdlibm 5.3 */
static const double one = 1.0;

double modf(double x, double *iptr)
{
    int i0, i1, j0;
    unsigned i;
    i0 = *(1 + (int *)&x);              /* high x */
    i1 = *(int *)&x;                    /* low  x */
    j0 = ((i0 >> 20) & 0x7ff) - 0x3ff;  /* exponent of x */
    if (j0 < 20) {                      /* integer part in high x */
        if (j0 < 0) {                   /* |x| < 1 */
            *(1 + (int *)iptr) = i0 & 0x80000000;
            *(int *)iptr = 0;           /* *iptr = +-0 */
            return x;
        } else {
            i = (0x000fffff) >> j0;
            if (((i0 & i) | i1) == 0) { /* x is integral */
                *iptr = x;
                *(1 + (int *)&x) = i0 & 0x80000000;
                *(int *)&x = 0;         /* return +-0 */
                return x;
            } else {
                *(1 + (int *)iptr) = i0 & (~i);
                *(int *)iptr = 0;
                return x - *iptr;
            }
        }
    } else if (j0 > 51) {               /* no fraction part */
        *iptr = x * one;
        *(1 + (int *)&x) = i0 & 0x80000000;
        *(int *)&x = 0;                 /* return +-0 */
        return x;
    } else {                            /* fraction part in low x */
        i = ((unsigned)(0xffffffff)) >> (j0 - 20);
        if ((i1 & i) == 0) {            /* x is integral */
            *iptr = x;
            *(1 + (int *)&x) = i0 & 0x80000000;
            *(int *)&x = 0;             /* return +-0 */
            return x;
        } else {
            *(1 + (int *)iptr) = i0;
            *(int *)iptr = i1 & (~i);
            return x - *iptr;
        }
    }
}
)";

/// s_rint.c — the TWO52 add-subtract rounding trick on raw words.
const char *RintSource = R"(
/* @(#)s_rint.c 1.3 95/01/18 -- Fdlibm 5.3 */
static const double TWO52[2] = {
    4.50359962737049600000e+15,         /* 0x43300000, 0x00000000 */
   -4.50359962737049600000e+15          /* 0xC3300000, 0x00000000 */
};

double rint(double x)
{
    int i0, j0, sx;
    unsigned i, i1;
    double w, t;
    i0 = *(1 + (int *)&x);
    sx = (i0 >> 31) & 1;
    i1 = *(unsigned *)&x;
    j0 = ((i0 >> 20) & 0x7ff) - 0x3ff;
    if (j0 < 20) {
        if (j0 < 0) {
            if (((i0 & 0x7fffffff) | i1) == 0) return x;
            i1 = i1 | (i0 & 0x0fffff);
            i0 = i0 & 0xfffe0000;
            i0 = i0 | (((i1 | (-i1)) >> 12) & 0x80000);
            *(1 + (int *)&x) = i0;
            w = TWO52[sx] + x;
            t = w - TWO52[sx];
            i0 = *(1 + (int *)&t);
            *(1 + (int *)&t) = (i0 & 0x7fffffff) | (sx << 31);
            return t;
        } else {
            i = (0x000fffff) >> j0;
            if (((i0 & i) | i1) == 0) return x; /* x is integral */
            i >>= 1;
            if (((i0 & i) | i1) != 0) {
                if (j0 == 19) i1 = 0x40000000;
                else i0 = (i0 & (~i)) | ((0x20000) >> j0);
            }
        }
    } else if (j0 > 51) {
        if (j0 == 0x400) return x + x;  /* inf or NaN */
        else return x;                  /* x is integral */
    } else {
        i = ((unsigned)(0xffffffff)) >> (j0 - 20);
        if ((i1 & i) == 0) return x;    /* x is integral */
        i >>= 1;
        if ((i1 & i) != 0)
            i1 = (i1 & (~i)) | ((0x40000000) >> (j0 - 20));
    }
    *(1 + (int *)&x) = i0;
    *(unsigned *)&x = i1;
    w = TWO52[sx] + x;
    return w - TWO52[sx];
}
)";


/// s_floor.c — word-level round toward minus infinity.
const char *FloorSource = R"(
/* @(#)s_floor.c 1.3 95/01/18 -- Fdlibm 5.3 */
static const double huge = 1.0e300;

double floor(double x)
{
    int i0, i1, j0;
    unsigned i, j;
    i0 = *(1 + (int *)&x);
    i1 = *(int *)&x;
    j0 = ((i0 >> 20) & 0x7ff) - 0x3ff;
    if (j0 < 20) {
        if (j0 < 0) {                   /* raise inexact if x != 0 */
            if (huge + x > 0.0) {       /* return 0*sign(x) if |x|<1 */
                if (i0 >= 0) {
                    i0 = i1 = 0;
                } else if (((i0 & 0x7fffffff) | i1) != 0) {
                    i0 = 0xbff00000;
                    i1 = 0;
                }
            }
        } else {
            i = (0x000fffff) >> j0;
            if (((i0 & i) | i1) == 0) return x; /* x is integral */
            if (huge + x > 0.0) {       /* raise inexact flag */
                if (i0 < 0) i0 += (0x00100000) >> j0;
                i0 = i0 & (~i);
                i1 = 0;
            }
        }
    } else if (j0 > 51) {
        if (j0 == 0x400) return x + x;  /* inf or NaN */
        else return x;                  /* x is integral */
    } else {
        i = ((unsigned)(0xffffffff)) >> (j0 - 20);
        if ((i1 & i) == 0) return x;    /* x is integral */
        if (huge + x > 0.0) {           /* raise inexact flag */
            if (i0 < 0) {
                if (j0 == 20) i0 += 1;
                else {
                    j = i1 + (1 << (52 - j0));
                    if (j < i1) i0 += 1; /* got a carry */
                    i1 = j;
                }
            }
            i1 = i1 & (~i);
        }
    }
    *(1 + (int *)&x) = i0;
    *(int *)&x = i1;
    return x;
}
)";

/// s_ceil.c — word-level round toward plus infinity.
const char *CeilSource = R"(
/* @(#)s_ceil.c 1.3 95/01/18 -- Fdlibm 5.3 */
static const double huge = 1.0e300;

double ceil(double x)
{
    int i0, i1, j0;
    unsigned i, j;
    i0 = *(1 + (int *)&x);
    i1 = *(int *)&x;
    j0 = ((i0 >> 20) & 0x7ff) - 0x3ff;
    if (j0 < 20) {
        if (j0 < 0) {                   /* raise inexact if x != 0 */
            if (huge + x > 0.0) {       /* return 0*sign(x) if |x|<1 */
                if (i0 < 0) {
                    i0 = 0x80000000;
                    i1 = 0;
                } else if ((i0 | i1) != 0) {
                    i0 = 0x3ff00000;
                    i1 = 0;
                }
            }
        } else {
            i = (0x000fffff) >> j0;
            if (((i0 & i) | i1) == 0) return x; /* x is integral */
            if (huge + x > 0.0) {       /* raise inexact flag */
                if (i0 > 0) i0 += (0x00100000) >> j0;
                i0 = i0 & (~i);
                i1 = 0;
            }
        }
    } else if (j0 > 51) {
        if (j0 == 0x400) return x + x;  /* inf or NaN */
        else return x;                  /* x is integral */
    } else {
        i = ((unsigned)(0xffffffff)) >> (j0 - 20);
        if ((i1 & i) == 0) return x;    /* x is integral */
        if (huge + x > 0.0) {           /* raise inexact flag */
            if (i0 > 0) {
                if (j0 == 20) i0 += 1;
                else {
                    j = i1 + (1 << (52 - j0));
                    if (j < i1) i0 += 1; /* got a carry */
                    i1 = j;
                }
            }
            i1 = i1 & (~i);
        }
    }
    *(1 + (int *)&x) = i0;
    *(int *)&x = i1;
    return x;
}
)";

/// e_sqrt.c — the restoring-shift bit-by-bit square root (correctly
/// rounded; the deepest loop nest in the suite).
const char *SqrtSource = R"(
/* @(#)e_sqrt.c 1.3 95/01/18 -- Fdlibm 5.3 */
static const double one = 1.0, tiny = 1.0e-300;

double sqrt(double x)
{
    double z = 0.0;
    int sign = (int)0x80000000;
    unsigned r, t1, s1, ix1, q1;
    int ix0, s0, q, m, t, i;

    ix0 = *(1 + (int *)&x);             /* high word of x */
    ix1 = *(unsigned *)&x;              /* low word of x */

    /* take care of Inf and NaN */
    if ((ix0 & 0x7ff00000) == 0x7ff00000) {
        return x * x + x;               /* sqrt(NaN)=NaN, sqrt(+inf)=+inf
                                           sqrt(-inf)=sNaN */
    }
    /* take care of zero */
    if (ix0 <= 0) {
        if (((ix0 & (~sign)) | ix1) == 0) return x; /* sqrt(+-0) = +-0 */
        else if (ix0 < 0)
            return (x - x) / (x - x);   /* sqrt(-ve) = sNaN */
    }
    /* normalize x */
    m = (ix0 >> 20);
    if (m == 0) {                       /* subnormal x */
        while (ix0 == 0) {
            m -= 21;
            ix0 = ix0 | (ix1 >> 11);
            ix1 <<= 21;
        }
        for (i = 0; (ix0 & 0x00100000) == 0; i++) ix0 <<= 1;
        m -= i - 1;
        ix0 = ix0 | (ix1 >> (32 - i));
        ix1 = ix1 << i;
    }
    m -= 1023;                          /* unbias exponent */
    ix0 = (ix0 & 0x000fffff) | 0x00100000;
    if (m & 1) {                        /* odd m, double x to make it even */
        ix0 += ix0 + ((ix1 & sign) >> 31);
        ix1 += ix1;
    }
    m >>= 1;                            /* m = [m/2] */

    /* generate sqrt(x) bit by bit */
    ix0 += ix0 + ((ix1 & sign) >> 31);
    ix1 += ix1;
    q = q1 = s0 = s1 = 0;               /* [q,q1] = sqrt(x) */
    r = 0x00200000;                     /* r = moving bit right to left */

    while (r != 0) {
        t = s0 + r;
        if (t <= ix0) {
            s0 = t + r;
            ix0 -= t;
            q += r;
        }
        ix0 += ix0 + ((ix1 & sign) >> 31);
        ix1 += ix1;
        r >>= 1;
    }

    r = sign;
    while (r != 0) {
        t1 = s1 + r;
        t = s0;
        if ((t < ix0) || ((t == ix0) && (t1 <= ix1))) {
            s1 = t1 + r;
            if (((t1 & sign) == sign) && (s1 & sign) == 0) s0 += 1;
            ix0 -= t;
            if (ix1 < t1) ix0 -= 1;
            ix1 -= t1;
            q1 += r;
        }
        ix0 += ix0 + ((ix1 & sign) >> 31);
        ix1 += ix1;
        r >>= 1;
    }

    /* use floating add to find out rounding direction */
    if ((ix0 | ix1) != 0) {
        z = one - tiny;                 /* trigger inexact flag */
        if (z >= one) {
            z = one + tiny;
            if (q1 == (unsigned)0xffffffff) {
                q1 = 0;
                q += 1;
            } else if (z > one) {
                if (q1 == (unsigned)0xfffffffe) q += 1;
                q1 += 2;
            } else
                q1 += (q1 & 1);
        }
    }
    ix0 = (q >> 1) + 0x3fe00000;
    ix1 = q1 >> 1;
    if ((q & 1) == 1) ix1 = ix1 | sign;
    ix0 += (m << 20);
    *(1 + (int *)&z) = ix0;
    *(unsigned *)&z = ix1;
    return z;
}
)";

/// s_nextafter.c — pure ulp stepping on the word pair.
const char *NextafterSource = R"(
/* @(#)s_nextafter.c 1.3 95/01/18 -- Fdlibm 5.3 */
double nextafter(double x, double y)
{
    int hx, hy, ix, iy;
    unsigned lx, ly;

    hx = *(1 + (int *)&x);              /* high word of x */
    lx = *(unsigned *)&x;               /* low  word of x */
    hy = *(1 + (int *)&y);              /* high word of y */
    ly = *(unsigned *)&y;               /* low  word of y */
    ix = hx & 0x7fffffff;               /* |x| */
    iy = hy & 0x7fffffff;               /* |y| */

    if (((ix >= 0x7ff00000) && ((ix - 0x7ff00000) | lx) != 0) ||
        ((iy >= 0x7ff00000) && ((iy - 0x7ff00000) | ly) != 0))
        return x + y;                   /* x or y is nan */
    if (x == y) return x;               /* x == y */
    if ((ix | lx) == 0) {               /* x == 0 */
        *(1 + (int *)&x) = hy & 0x80000000; /* return +-minsubnormal */
        *(unsigned *)&x = 1;
        y = x * x;
        if (y == x) return y;
        else return x;                  /* raise underflow flag */
    }
    if (hx >= 0) {                      /* x > 0 */
        if (hx > hy || ((hx == hy) && (lx > ly))) { /* x > y: x -= ulp */
            if (lx == 0) hx -= 1;
            lx -= 1;
        } else {                        /* x < y: x += ulp */
            lx += 1;
            if (lx == 0) hx += 1;
        }
    } else {                            /* x < 0 */
        if (hy >= 0 || hx > hy || ((hx == hy) && (lx > ly))) {
            if (lx == 0) hx -= 1;       /* x < y: x -= ulp */
            lx -= 1;
        } else {                        /* x > y: x += ulp */
            lx += 1;
            if (lx == 0) hx += 1;
        }
    }
    hy = hx & 0x7ff00000;
    if (hy >= 0x7ff00000) return x + x; /* overflow */
    if (hy < 0x00100000) {              /* underflow */
        y = x * x;
        if (y != x) {                   /* raise underflow flag */
            *(1 + (int *)&y) = hx;
            *(unsigned *)&y = lx;
            return y;
        }
    }
    *(1 + (int *)&x) = hx;
    *(unsigned *)&x = lx;
    return x;
}
)";

} // namespace

const std::vector<SourceBenchmark> &lang::sourceSuite() {
  static const std::vector<SourceBenchmark> Suite = {
      {"tanh", "s_tanh.c", "tanh", 16, TanhSource},
      {"cbrt", "s_cbrt.c", "cbrt", 24, CbrtSource},
      {"asinh", "s_asinh.c", "asinh", 14, AsinhSource},
      {"acosh", "e_acosh.c", "ieee754_acosh", 15, AcoshSource},
      {"atanh", "e_atanh.c", "ieee754_atanh", 15, AtanhSource},
      {"cosh", "e_cosh.c", "ieee754_cosh", 20, CoshSource},
      {"logb", "s_logb.c", "logb", 8, LogbSource},
      {"ilogb", "s_ilogb.c", "ilogb", 12, IlogbSource},
      {"modf", "s_modf.c", "modf", 32, ModfSource},
      {"rint", "s_rint.c", "rint", 34, RintSource},
      {"floor", "s_floor.c", "floor", 30, FloorSource},
      {"ceil", "s_ceil.c", "ceil", 29, CeilSource},
      {"sqrt", "e_sqrt.c", "ieee754_sqrt", 68, SqrtSource},
      {"nextafter", "s_nextafter.c", "nextafter", 36, NextafterSource},
  };
  return Suite;
}

const SourceBenchmark *lang::findSourceBenchmark(const std::string &Name) {
  for (const SourceBenchmark &B : sourceSuite())
    if (B.Name == Name)
      return &B;
  return nullptr;
}

SourceProgram lang::compileSourceBenchmark(const SourceBenchmark &B) {
  SourceProgramOptions Opts;
  Opts.TotalLines = B.PaperLines;
  SourceProgram SP = compileSourceProgram(B.Source, B.Name, Opts);
  if (SP.success())
    SP.Prog.File = B.File;
  return SP;
}
